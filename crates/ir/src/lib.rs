//! # accmos-ir
//!
//! The intermediate representation shared by every AccMoS-RS crate: signal
//! [`DataType`]s and runtime [`Value`]s with C-compatible semantics, the
//! 58-template actor library ([`ActorKind`]), hierarchical [`Model`]s with
//! structural validation, the four-metric coverage machinery, the
//! calculation-diagnosis taxonomy, and the engine-independent
//! [`SimulationReport`].
//!
//! AccMoS-RS reproduces *AccMoS: Accelerating Model Simulation for Simulink
//! via Code Generation* (DAC 2024). This crate corresponds to the data the
//! paper's *Model Preprocessing* step extracts: actor type and operator for
//! coverage analysis, input/output signals for diagnosis, and hierarchical
//! paths (`MODEL_SUBSYSTEM_ADD2`) as index keys.
//!
//! ## Example
//!
//! Build the paper's Figure 1 model — two accumulators feeding a sum that
//! eventually wraps:
//!
//! ```
//! use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar};
//!
//! let mut b = ModelBuilder::new("Sample");
//! b.inport("A", DataType::I32);
//! b.inport("B", DataType::I32);
//! b.actor("AccA", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
//! b.actor("AccB", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
//! b.actor("Sum", ActorKind::Sum { signs: "++".into() });
//! b.outport("Out", DataType::I32);
//! b.connect(("A", 0), ("AccA", 0));
//! b.connect(("B", 0), ("AccB", 0));
//! b.connect(("AccA", 0), ("Sum", 0));
//! b.connect(("AccB", 0), ("Sum", 1));
//! b.connect(("Sum", 0), ("Out", 0));
//! let model = b.build()?;
//! assert_eq!(model.root.actor_count(), 6);
//! # Ok::<(), accmos_ir::ModelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod actor;
mod coverage;
mod diag;
mod digest;
mod dtype;
mod error;
mod interval;
mod model;
mod path;
mod report;
mod testcase;
mod value;

pub use actor::{
    Actor, ActorKind, BitOp, LogicOp, LookupMethod, MathOp, MinMaxOp, RoundOp, ShiftDir,
    SwitchCriteria, TrigOp,
};
pub use coverage::{
    CoverageBitmap, CoverageBitmaps, CoverageCounts, CoverageKind, CoverageMap, CoveragePoint,
    CoverageSummary,
};
pub use diag::{applicable_diagnoses, DiagnosticEvent, DiagnosticKind, DiagnosticPolicy};
pub use digest::{source_digest_hex, OutputDigest};
pub use dtype::{DataType, ParseDataTypeError};
pub use error::ModelError;
pub use interval::{Interval, F64_EXACT_INT};
pub use model::{
    Block, BlockBody, Line, Model, ModelBuilder, PortRef, System, SystemBuilder, SystemKind,
};
pub use path::ActorPath;
pub use report::{ActorProfile, CustomEvent, SignalSample, SimulationReport};
pub use testcase::{ParseTestVectorsError, TestColumn, TestVectors};
pub use value::{BinOp, RelOp, Scalar, Value};
