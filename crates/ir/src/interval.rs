//! Value-range intervals: the abstract domain of the static analyzer.
//!
//! An [`Interval`] over-approximates the set of values a signal can carry
//! as a closed range `[lo, hi]` in `f64` plus a *may-be-NaN* flag for
//! floating signals. The analyzer (`accmos-analyze`) propagates intervals
//! through actor transfer functions; codegen consults them to prune
//! diagnosis sites that provably never fire.
//!
//! Two soundness conventions matter everywhere intervals are consumed:
//!
//! * **Empty** intervals (`lo > hi`) mean *unreachable* — the signal is
//!   never written on any execution (e.g. an actor inside a group whose
//!   control is constantly zero still holds its zero-initialized C
//!   static, so group outputs include 0 instead of being empty).
//! * **Exactness**: range endpoints are `f64`. Integer decisions (fits /
//!   excludes a value) are only trusted when both endpoints are integral
//!   and within ±2^53, where `f64` arithmetic is exact. The helpers
//!   [`Interval::is_exact_int`] and [`Interval::fits`] encode this guard.
//!
//! # Examples
//!
//! ```
//! use accmos_ir::{DataType, Interval};
//!
//! let a = Interval::exact(10.0);
//! let b = Interval::new(-3.0, 3.0);
//! let sum = a + b;
//! assert_eq!((sum.lo, sum.hi), (7.0, 13.0));
//! assert!(sum.fits(DataType::I8));
//! assert!(!sum.contains(0.0));
//! ```

use crate::dtype::DataType;
use std::fmt;

/// Largest integer magnitude exactly representable in `f64` (2^53).
pub const F64_EXACT_INT: f64 = 9_007_199_254_740_992.0;

/// A closed value range `[lo, hi]` with a may-be-NaN flag.
///
/// The empty interval is represented as `lo > hi` (canonically
/// [`Interval::EMPTY`]); NaN endpoints are never stored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (inclusive; `-inf` allowed).
    pub lo: f64,
    /// Upper bound (inclusive; `+inf` allowed).
    pub hi: f64,
    /// Whether the value may additionally be NaN.
    pub nan: bool,
}

impl Interval {
    /// The empty set: no numeric value, not NaN. Means "never written".
    pub const EMPTY: Interval =
        Interval { lo: f64::INFINITY, hi: f64::NEG_INFINITY, nan: false };

    /// The unrestricted float range, including NaN.
    pub const TOP: Interval =
        Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY, nan: true };

    /// The range `[lo, hi]` (empty if `lo > hi`; NaN endpoints collapse
    /// to [`Interval::TOP`] — an unknown bound is no bound).
    pub fn new(lo: f64, hi: f64) -> Interval {
        if lo.is_nan() || hi.is_nan() {
            return Interval::TOP;
        }
        if lo > hi {
            return Interval::EMPTY;
        }
        Interval { lo, hi, nan: false }
    }

    /// The singleton `[v, v]` (or pure-NaN if `v` is NaN).
    pub fn exact(v: f64) -> Interval {
        if v.is_nan() {
            return Interval { lo: f64::INFINITY, hi: f64::NEG_INFINITY, nan: true };
        }
        Interval { lo: v, hi: v, nan: false }
    }

    /// Everything a signal of type `dt` can hold: the full machine range
    /// for `Bool`/integers, `[-inf, +inf]` plus NaN for floats.
    pub fn of_dtype(dt: DataType) -> Interval {
        if dt.is_float() {
            Interval::TOP
        } else {
            Interval { lo: dt.min_f64(), hi: dt.max_f64(), nan: false }
        }
    }

    /// Builder-style: also allow NaN.
    pub fn with_nan(mut self) -> Interval {
        self.nan = true;
        self
    }

    /// `true` when no value (numeric or NaN) is possible.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi && !self.nan
    }

    /// `true` when the numeric part is empty (the value, if any, is NaN).
    pub fn numeric_empty(self) -> bool {
        self.lo > self.hi
    }

    /// The single concrete value, when the interval is one non-NaN point.
    pub fn as_const(self) -> Option<f64> {
        (self.lo == self.hi && !self.nan).then_some(self.lo)
    }

    /// Whether the numeric range contains `v`.
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Smallest interval covering both operands.
    pub fn join(self, other: Interval) -> Interval {
        let nan = self.nan || other.nan;
        let (lo, hi) = if self.numeric_empty() {
            (other.lo, other.hi)
        } else if other.numeric_empty() {
            (self.lo, self.hi)
        } else {
            (self.lo.min(other.lo), self.hi.max(other.hi))
        };
        Interval { lo, hi, nan }
    }

    /// Intersection of both operands.
    pub fn meet(self, other: Interval) -> Interval {
        let mut r = Interval::new(self.lo.max(other.lo), self.hi.min(other.hi));
        r.nan = self.nan && other.nan;
        r
    }

    /// Standard widening: any bound that moved jumps to `top`'s bound, so
    /// ascending chains stabilize in at most two steps per signal.
    pub fn widen(self, next: Interval, top: Interval) -> Interval {
        if next.numeric_empty() {
            return Interval { nan: self.nan || next.nan, ..self };
        }
        if self.numeric_empty() {
            return next;
        }
        Interval {
            lo: if next.lo < self.lo { top.lo } else { self.lo },
            hi: if next.hi > self.hi { top.hi } else { self.hi },
            nan: self.nan || next.nan,
        }
    }

    /// Whether both endpoints are integers exactly representable in `f64`
    /// (|bound| ≤ 2^53) — the guard for trusting integer decisions.
    pub fn is_exact_int(self) -> bool {
        !self.numeric_empty()
            && self.lo.fract() == 0.0
            && self.hi.fract() == 0.0
            && self.lo.abs() <= F64_EXACT_INT
            && self.hi.abs() <= F64_EXACT_INT
    }

    /// Whether every possible value (NaN included) is representable in
    /// `dt` without wrapping, saturation or rounding surprises. This is
    /// the *proof obligation* for skipping an overflow/downcast check, so
    /// it is deliberately conservative: `false` whenever the interval is
    /// not exactly decidable.
    pub fn fits(self, dt: DataType) -> bool {
        if self.numeric_empty() {
            return !self.nan || dt.is_float();
        }
        if dt.is_float() {
            // Floats absorb any f64 range; F32 fits only when the range
            // is within exact-integer F32 territory or infinite — keep it
            // simple and conservative: only F64 always fits.
            return dt == DataType::F64;
        }
        if self.nan {
            return false;
        }
        self.is_exact_int() && self.lo >= dt.min_f64() && self.hi <= dt.max_f64()
    }

    /// Apply a monotone-corner binary op: the result hull of the four
    /// endpoint combinations. NaN corners (inf-inf, 0*inf) widen to TOP.
    fn binop(self, other: Interval, f: impl Fn(f64, f64) -> f64) -> Interval {
        if self.numeric_empty() || other.numeric_empty() {
            return Interval {
                lo: f64::INFINITY,
                hi: f64::NEG_INFINITY,
                nan: self.nan || other.nan,
            };
        }
        let corners = [
            f(self.lo, other.lo),
            f(self.lo, other.hi),
            f(self.hi, other.lo),
            f(self.hi, other.hi),
        ];
        if corners.iter().any(|c| c.is_nan()) {
            return Interval::TOP;
        }
        let mut r = Interval::new(
            corners.iter().copied().fold(f64::INFINITY, f64::min),
            corners.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        );
        r.nan = self.nan || other.nan;
        r
    }

    /// Interval absolute value.
    pub fn abs(self) -> Interval {
        if self.numeric_empty() {
            return self;
        }
        let lo = if self.contains(0.0) { 0.0 } else { self.lo.abs().min(self.hi.abs()) };
        Interval { lo, hi: self.lo.abs().max(self.hi.abs()), nan: self.nan }
    }

    /// Elementwise minimum of two intervals.
    pub fn min_with(self, other: Interval) -> Interval {
        self.binop(other, f64::min)
    }

    /// Elementwise maximum of two intervals.
    pub fn max_with(self, other: Interval) -> Interval {
        self.binop(other, f64::max)
    }

    /// Clamp into `[lo, hi]` (saturation semantics).
    pub fn clamp_to(self, lo: f64, hi: f64) -> Interval {
        if self.numeric_empty() {
            return self;
        }
        Interval { lo: self.lo.clamp(lo, hi), hi: self.hi.clamp(lo, hi), nan: self.nan }
    }

    /// The boolean interval `[0, 1]`.
    pub fn any_bool() -> Interval {
        Interval::new(0.0, 1.0)
    }

    /// Whether the value is provably never zero (and never NaN-free
    /// comparisons aside: `NaN != 0` holds in C, so NaN cannot trip an
    /// `x == 0` check and does not spoil this proof).
    pub fn excludes_zero(self) -> bool {
        self.numeric_empty() || self.lo > 0.0 || self.hi < 0.0
    }

    /// Whether the value is provably `== 0` (constant false condition).
    pub fn always_zero(self) -> bool {
        self.as_const() == Some(0.0)
    }

    /// Whether the value is provably `!= 0` (constant true condition;
    /// NaN counts as nonzero under C `!= 0`).
    pub fn always_nonzero(self) -> bool {
        !self.is_empty() && (self.numeric_empty() || self.lo > 0.0 || self.hi < 0.0)
    }
}

/// Interval addition: hull of endpoint sums.
impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, other: Interval) -> Interval {
        self.binop(other, |a, b| a + b)
    }
}

/// Interval subtraction: hull of endpoint differences.
impl std::ops::Sub for Interval {
    type Output = Interval;
    fn sub(self, other: Interval) -> Interval {
        self.binop(other, |a, b| a - b)
    }
}

/// Interval multiplication: hull of endpoint products.
impl std::ops::Mul for Interval {
    type Output = Interval;
    fn mul(self, other: Interval) -> Interval {
        self.binop(other, |a, b| a * b)
    }
}

/// Interval negation.
impl std::ops::Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        if self.numeric_empty() {
            return self;
        }
        Interval { lo: -self.hi, hi: -self.lo, nan: self.nan }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        if self.numeric_empty() {
            return write!(f, "NaN");
        }
        match self.as_const() {
            Some(v) => write!(f, "{{{v}}}")?,
            None => write!(f, "[{}, {}]", self.lo, self.hi)?,
        }
        if self.nan {
            write!(f, "∪NaN")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        assert!(Interval::EMPTY.is_empty());
        assert!(!Interval::TOP.is_empty());
        assert_eq!(Interval::new(3.0, 1.0), Interval::EMPTY);
        assert_eq!(Interval::exact(5.0).as_const(), Some(5.0));
        assert!(Interval::exact(f64::NAN).numeric_empty());
        assert!(Interval::exact(f64::NAN).nan);
        assert_eq!(Interval::of_dtype(DataType::U8), Interval::new(0.0, 255.0));
        assert!(Interval::of_dtype(DataType::F64).nan);
    }

    #[test]
    fn join_meet_widen() {
        let a = Interval::new(0.0, 5.0);
        let b = Interval::new(3.0, 9.0);
        assert_eq!(a.join(b), Interval::new(0.0, 9.0));
        assert_eq!(a.meet(b), Interval::new(3.0, 5.0));
        assert_eq!(a.meet(Interval::new(7.0, 9.0)), Interval::EMPTY);
        assert_eq!(Interval::EMPTY.join(a), a);

        let top = Interval::of_dtype(DataType::I32);
        let widened = a.widen(Interval::new(0.0, 6.0), top);
        assert_eq!(widened.hi, top.hi, "upper bound moved -> widened to top");
        assert_eq!(widened.lo, 0.0, "stable bound kept");
        assert_eq!(a.widen(a, top), a, "stable interval unchanged");
    }

    #[test]
    fn arithmetic() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(-3.0, 4.0);
        assert_eq!(a + b, Interval::new(-2.0, 6.0));
        assert_eq!(a - b, Interval::new(-3.0, 5.0));
        assert_eq!(a * b, Interval::new(-6.0, 8.0));
        assert_eq!(b.abs(), Interval::new(0.0, 4.0));
        assert_eq!(-b, Interval::new(-4.0, 3.0));
        assert_eq!(a.min_with(b), Interval::new(-3.0, 2.0));
        assert_eq!(a.max_with(b), Interval::new(1.0, 4.0));
        // inf - inf is NaN at runtime: the result must admit NaN.
        let inf = Interval::new(f64::NEG_INFINITY, f64::INFINITY);
        assert!((inf - inf).nan);
        assert!((inf * Interval::exact(0.0)).nan);
    }

    #[test]
    fn exactness_guard() {
        assert!(Interval::new(-128.0, 127.0).fits(DataType::I8));
        assert!(!Interval::new(-129.0, 127.0).fits(DataType::I8));
        assert!(!Interval::new(0.0, 0.5).fits(DataType::I8), "fractional bound");
        assert!(!Interval::new(0.0, 1e17).fits(DataType::I64), "beyond 2^53");
        assert!(!Interval::new(0.0, 1.0).with_nan().fits(DataType::I8), "NaN unfit");
        assert!(Interval::new(0.0, 1e300).fits(DataType::F64));
        assert!(!Interval::new(0.0, 1e300).fits(DataType::F32), "F32 conservative");
    }

    #[test]
    fn zero_predicates() {
        assert!(Interval::new(1.0, 9.0).excludes_zero());
        assert!(Interval::new(-9.0, -1.0).excludes_zero());
        assert!(!Interval::new(-1.0, 1.0).excludes_zero());
        assert!(Interval::exact(0.0).always_zero());
        assert!(Interval::new(2.0, 3.0).always_nonzero());
        assert!(
            Interval::exact(f64::NAN).always_nonzero(),
            "NaN != 0 holds in C"
        );
        assert!(!Interval::EMPTY.always_nonzero());
    }
}
