//! Hierarchical model structure.
//!
//! A [`Model`] mirrors the two-part structure of Simulink model files that
//! the paper's preprocessing step exploits (§3.1): every [`System`] holds
//! *blocks* (actors or nested subsystems, stored with default-typed ports)
//! and *lines* (the relationship part connecting output ports to input
//! ports). Validation checks the structural rules; type resolution and
//! scheduling happen later in `accmos-graph`.

use crate::actor::{Actor, ActorKind};
use crate::dtype::DataType;
use crate::error::ModelError;
use crate::value::{Scalar, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Execution discipline of a subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SystemKind {
    /// Executes every step.
    #[default]
    Plain,
    /// Executes only while its control signal is nonzero; held outputs
    /// otherwise. (Simulink *Enabled Subsystem*.)
    Enabled,
    /// Executes only on a rising edge of its control signal.
    /// (Simulink *Triggered Subsystem*.)
    Triggered,
}

impl SystemKind {
    /// Stable MDLX spelling.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Plain => "plain",
            SystemKind::Enabled => "enabled",
            SystemKind::Triggered => "triggered",
        }
    }

    /// Parse the MDLX spelling.
    pub fn parse(s: &str) -> Option<SystemKind> {
        [SystemKind::Plain, SystemKind::Enabled, SystemKind::Triggered]
            .into_iter()
            .find(|k| k.name() == s)
    }

    /// Whether the subsystem has an extra control input port.
    pub fn is_conditional(self) -> bool {
        self != SystemKind::Plain
    }
}

/// A reference to one port of a named sibling block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// The sibling block name.
    pub block: String,
    /// The 0-based port index.
    pub port: usize,
}

impl PortRef {
    /// Construct a port reference.
    pub fn new(block: impl Into<String>, port: usize) -> PortRef {
        PortRef { block: block.into(), port }
    }
}

impl<S: Into<String>> From<(S, usize)> for PortRef {
    fn from((block, port): (S, usize)) -> PortRef {
        PortRef::new(block, port)
    }
}

/// A signal line from an output port to an input port.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Line {
    /// Source output port.
    pub src: PortRef,
    /// Destination input port.
    pub dst: PortRef,
}

/// The body of a block: a leaf actor or a nested subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockBody {
    /// A leaf actor.
    Actor(Actor),
    /// A nested subsystem.
    Subsystem(System),
}

/// A named block within a system.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Name, unique among siblings.
    pub name: String,
    /// Actor or subsystem body.
    pub body: BlockBody,
}

impl Block {
    /// Number of input ports (a conditional subsystem's control port is its
    /// last input).
    pub fn in_count(&self) -> usize {
        match &self.body {
            BlockBody::Actor(a) => a.kind.in_count(),
            BlockBody::Subsystem(s) => {
                s.inport_count() + usize::from(s.kind.is_conditional())
            }
        }
    }

    /// Number of output ports.
    pub fn out_count(&self) -> usize {
        match &self.body {
            BlockBody::Actor(a) => a.kind.out_count(),
            BlockBody::Subsystem(s) => s.outport_count(),
        }
    }
}

/// A system: the block/line container at one hierarchy level.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct System {
    /// Execution discipline (only meaningful for non-root systems).
    pub kind: SystemKind,
    /// The blocks, in insertion order.
    pub blocks: Vec<Block>,
    /// The signal lines.
    pub lines: Vec<Line>,
}

impl System {
    /// An empty plain system.
    pub fn new() -> System {
        System::default()
    }

    /// Look up a block by name.
    pub fn block(&self, name: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Number of `Inport` actors directly inside.
    pub fn inport_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(&b.body, BlockBody::Actor(a) if matches!(a.kind, ActorKind::Inport { .. })))
            .count()
    }

    /// Number of `Outport` actors directly inside.
    pub fn outport_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(&b.body, BlockBody::Actor(a) if matches!(a.kind, ActorKind::Outport { .. })))
            .count()
    }

    /// Total leaf actors, recursively.
    pub fn actor_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| match &b.body {
                BlockBody::Actor(_) => 1,
                BlockBody::Subsystem(s) => s.actor_count(),
            })
            .sum()
    }

    /// Total subsystems, recursively (not counting `self`).
    pub fn subsystem_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| match &b.body {
                BlockBody::Actor(_) => 0,
                BlockBody::Subsystem(s) => 1 + s.subsystem_count(),
            })
            .sum()
    }
}

/// A complete model: a name plus the root system.
///
/// # Examples
///
/// Build and validate the Figure 1 accumulate-and-combine model:
///
/// ```
/// use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar};
///
/// let mut b = ModelBuilder::new("Sample");
/// b.inport("A", DataType::I32);
/// b.inport("B", DataType::I32);
/// b.actor("AccA", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
/// b.actor("AccB", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
/// b.actor("Sum", ActorKind::Sum { signs: "++".into() });
/// b.outport("Out", DataType::I32);
/// b.connect(("A", 0), ("AccA", 0));
/// b.connect(("B", 0), ("AccB", 0));
/// b.connect(("AccA", 0), ("Sum", 0));
/// b.connect(("AccB", 0), ("Sum", 1));
/// b.connect(("Sum", 0), ("Out", 0));
/// let model = b.build()?;
/// assert_eq!(model.root.actor_count(), 6);
/// # Ok::<(), accmos_ir::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Model name (first path segment of every actor).
    pub name: String,
    /// Root system (always `Plain`).
    pub root: System,
}

impl Model {
    /// Construct without validating; call [`Model::validate`] before use.
    pub fn new(name: impl Into<String>, root: System) -> Model {
        Model { name: name.into(), root }
    }

    /// Check all structural rules.
    ///
    /// # Errors
    ///
    /// Returns the first [`ModelError`] found: duplicate names, dangling
    /// lines, port ranges, multiple drivers, unconnected inputs, bad
    /// parameters, or data-store misuse. Algebraic loops are detected later
    /// during scheduling.
    pub fn validate(&self) -> Result<(), ModelError> {
        let mut stores = BTreeSet::new();
        collect_stores(&self.root, &mut stores)?;
        validate_system(&self.name, &self.root, &stores, true)?;
        Ok(())
    }
}

fn collect_stores(system: &System, stores: &mut BTreeSet<String>) -> Result<(), ModelError> {
    for block in &system.blocks {
        match &block.body {
            BlockBody::Actor(a) => {
                if let ActorKind::DataStoreMemory { store, .. } = &a.kind {
                    if !stores.insert(store.clone()) {
                        return Err(ModelError::DuplicateDataStore { store: store.clone() });
                    }
                }
            }
            BlockBody::Subsystem(s) => collect_stores(s, stores)?,
        }
    }
    Ok(())
}

fn validate_system(
    path: &str,
    system: &System,
    stores: &BTreeSet<String>,
    is_root: bool,
) -> Result<(), ModelError> {
    if is_root && system.kind != SystemKind::Plain {
        return Err(ModelError::Structural {
            detail: format!("root system of `{path}` must be plain"),
        });
    }

    // Unique sibling names.
    let mut names = BTreeSet::new();
    for block in &system.blocks {
        if !names.insert(block.name.as_str()) {
            return Err(ModelError::DuplicateBlock {
                system: path.to_owned(),
                name: block.name.clone(),
            });
        }
    }

    // Inport/Outport indices must be 0..n, unique.
    check_port_indices(path, system, true)?;
    check_port_indices(path, system, false)?;

    // Lines reference existing blocks/ports; one driver per input.
    let by_name: BTreeMap<&str, &Block> =
        system.blocks.iter().map(|b| (b.name.as_str(), b)).collect();
    let mut driven: BTreeSet<(&str, usize)> = BTreeSet::new();
    for line in &system.lines {
        let src = by_name.get(line.src.block.as_str()).ok_or_else(|| ModelError::UnknownBlock {
            system: path.to_owned(),
            name: line.src.block.clone(),
        })?;
        if line.src.port >= src.out_count() {
            return Err(ModelError::InvalidPort {
                block: format!("{path}/{}", src.name),
                port: line.src.port,
                output: true,
            });
        }
        let dst = by_name.get(line.dst.block.as_str()).ok_or_else(|| ModelError::UnknownBlock {
            system: path.to_owned(),
            name: line.dst.block.clone(),
        })?;
        if line.dst.port >= dst.in_count() {
            return Err(ModelError::InvalidPort {
                block: format!("{path}/{}", dst.name),
                port: line.dst.port,
                output: false,
            });
        }
        if !driven.insert((dst.name.as_str(), line.dst.port)) {
            return Err(ModelError::MultipleDrivers {
                block: format!("{path}/{}", dst.name),
                port: line.dst.port,
            });
        }
    }

    // Every input port must be connected.
    for block in &system.blocks {
        for port in 0..block.in_count() {
            if !driven.contains(&(block.name.as_str(), port)) {
                return Err(ModelError::UnconnectedInput {
                    block: format!("{path}/{}", block.name),
                    port,
                });
            }
        }
    }

    // Per-actor parameter checks + data-store references; recurse.
    for block in &system.blocks {
        let full = format!("{path}/{}", block.name);
        match &block.body {
            BlockBody::Actor(a) => validate_actor(&full, a, stores)?,
            BlockBody::Subsystem(s) => validate_system(&full, s, stores, false)?,
        }
    }
    Ok(())
}

fn check_port_indices(path: &str, system: &System, inputs: bool) -> Result<(), ModelError> {
    let mut indices = Vec::new();
    for block in &system.blocks {
        if let BlockBody::Actor(a) = &block.body {
            match (&a.kind, inputs) {
                (ActorKind::Inport { index }, true) | (ActorKind::Outport { index }, false) => {
                    indices.push((*index, block.name.clone()));
                }
                _ => {}
            }
        }
    }
    indices.sort();
    for (expect, (got, name)) in indices.iter().enumerate() {
        if *got != expect {
            let what = if inputs { "Inport" } else { "Outport" };
            return Err(ModelError::Structural {
                detail: format!(
                    "{what} indices in `{path}` must be 0..{}; `{name}` has index {got}",
                    indices.len()
                ),
            });
        }
    }
    Ok(())
}

fn validate_actor(path: &str, actor: &Actor, stores: &BTreeSet<String>) -> Result<(), ModelError> {
    use ActorKind::*;
    let bad = |detail: String| ModelError::InvalidParameter { block: path.to_owned(), detail };
    match &actor.kind {
        Sum { signs }
            if (signs.is_empty() || !signs.chars().all(|c| c == '+' || c == '-')) => {
                return Err(bad(format!("Sum signs must be non-empty +/- string, got `{signs}`")));
            }
        Product { ops }
            if (ops.is_empty() || !ops.chars().all(|c| c == '*' || c == '/')) => {
                return Err(bad(format!("Product ops must be non-empty */ string, got `{ops}`")));
            }
        PulseGenerator { period, duty, .. }
            if (*period == 0 || duty > period) => {
                return Err(bad(format!("pulse period {period} / duty {duty} invalid")));
            }
        Delay { steps, .. }
            if *steps == 0 => {
                return Err(bad("Delay steps must be >= 1".into()));
            }
        ZeroOrderHold { sample }
            if *sample == 0 => {
                return Err(bad("ZeroOrderHold sample must be >= 1".into()));
            }
        Quantizer { interval }
            if *interval <= 0.0 => {
                return Err(bad("Quantizer interval must be > 0".into()));
            }
        RateLimiter { rising, falling }
            if (*rising <= 0.0 || *falling >= 0.0) => {
                return Err(bad("RateLimiter needs rising > 0 and falling < 0".into()));
            }
        Saturation { lo, hi }
            if lo > hi => {
                return Err(bad(format!("Saturation lo {lo} > hi {hi}")));
            }
        DeadZone { start, end }
            if start > end => {
                return Err(bad(format!("DeadZone start {start} > end {end}")));
            }
        MultiportSwitch { cases }
            if *cases == 0 => {
                return Err(bad("MultiportSwitch needs at least one case".into()));
            }
        MinMax { inputs, .. } | Merge { inputs } | Mux { inputs }
            if *inputs == 0 => {
                return Err(bad("needs at least one input".into()));
            }
        Logical { op, inputs }
            if *op != crate::actor::LogicOp::Not && *inputs < 1 => {
                return Err(bad("Logical needs at least one input".into()));
            }
        Demux { outputs }
            if *outputs == 0 => {
                return Err(bad("Demux needs at least one output".into()));
            }
        Shift { amount, .. }
            if *amount >= 64 => {
                return Err(bad(format!("shift amount {amount} out of range")));
            }
        Polynomial { coeffs }
            if coeffs.is_empty() => {
                return Err(bad("Polynomial needs at least one coefficient".into()));
            }
        Selector { indices, dynamic }
            if indices.is_empty() && !dynamic => {
                return Err(bad("static Selector needs at least one index".into()));
            }
        Lookup1D { breakpoints, table, method } => {
            validate_breakpoints(path, breakpoints, *method)?;
            if table.len() != breakpoints.len() {
                return Err(bad(format!(
                    "Lookup1D table length {} != breakpoints {}",
                    table.len(),
                    breakpoints.len()
                )));
            }
        }
        Lookup2D { row_bps, col_bps, table, method } => {
            validate_breakpoints(path, row_bps, *method)?;
            validate_breakpoints(path, col_bps, *method)?;
            if table.len() != row_bps.len() * col_bps.len() {
                return Err(bad(format!(
                    "Lookup2D table length {} != {}x{}",
                    table.len(),
                    row_bps.len(),
                    col_bps.len()
                )));
            }
        }
        DataStoreRead { store } | DataStoreWrite { store }
            if !stores.contains(store) => {
                return Err(ModelError::UnknownDataStore {
                    block: path.to_owned(),
                    store: store.clone(),
                });
            }
        Relay { on_threshold, off_threshold, .. }
            if on_threshold < off_threshold => {
                return Err(bad("Relay on_threshold must be >= off_threshold".into()));
            }
        _ => {}
    }
    Ok(())
}

fn validate_breakpoints(
    path: &str,
    bps: &[f64],
    method: crate::actor::LookupMethod,
) -> Result<(), ModelError> {
    let min_len = if method == crate::actor::LookupMethod::Interpolate { 2 } else { 1 };
    if bps.len() < min_len {
        return Err(ModelError::InvalidParameter {
            block: path.to_owned(),
            detail: format!("lookup needs at least {min_len} breakpoints"),
        });
    }
    if bps.windows(2).any(|w| w[0] >= w[1]) {
        return Err(ModelError::InvalidParameter {
            block: path.to_owned(),
            detail: "lookup breakpoints must be strictly increasing".into(),
        });
    }
    Ok(())
}

/// Incremental construction of one [`System`].
///
/// Obtained from [`ModelBuilder`] (for the root) or the closure passed to
/// [`SystemBuilder::subsystem`].
#[derive(Debug, Default)]
pub struct SystemBuilder {
    system: System,
    next_in: usize,
    next_out: usize,
}

impl SystemBuilder {
    fn with_kind(kind: SystemKind) -> SystemBuilder {
        SystemBuilder { system: System { kind, ..System::default() }, next_in: 0, next_out: 0 }
    }

    /// Add a leaf actor block.
    pub fn actor(&mut self, name: &str, actor: impl Into<Actor>) -> &mut Self {
        self.system.blocks.push(Block { name: name.to_owned(), body: BlockBody::Actor(actor.into()) });
        self
    }

    /// Add an `Inport` with the next free index and an explicit data type.
    pub fn inport(&mut self, name: &str, dtype: DataType) -> &mut Self {
        let index = self.next_in;
        self.next_in += 1;
        self.actor(name, Actor::new(ActorKind::Inport { index }).with_dtype(dtype))
    }

    /// Add an `Outport` with the next free index.
    pub fn outport(&mut self, name: &str, dtype: DataType) -> &mut Self {
        let index = self.next_out;
        self.next_out += 1;
        self.actor(name, Actor::new(ActorKind::Outport { index }).with_dtype(dtype))
    }

    /// Add a `Constant` from a scalar.
    pub fn constant(&mut self, name: &str, value: Scalar) -> &mut Self {
        self.actor(name, ActorKind::Constant { value: Value::scalar(value) })
    }

    /// Add a nested subsystem, built inside the closure.
    pub fn subsystem(
        &mut self,
        name: &str,
        kind: SystemKind,
        build: impl FnOnce(&mut SystemBuilder),
    ) -> &mut Self {
        let mut inner = SystemBuilder::with_kind(kind);
        build(&mut inner);
        self.system
            .blocks
            .push(Block { name: name.to_owned(), body: BlockBody::Subsystem(inner.system) });
        self
    }

    /// Connect an output port to an input port.
    pub fn connect(&mut self, src: impl Into<PortRef>, dst: impl Into<PortRef>) -> &mut Self {
        self.system.lines.push(Line { src: src.into(), dst: dst.into() });
        self
    }

    /// Connect output 0 of `src` to input 0 of `dst`.
    pub fn wire(&mut self, src: &str, dst: &str) -> &mut Self {
        self.connect((src, 0), (dst, 0))
    }

    /// Connect output 0 of `src` to input `port` of `dst`.
    pub fn wire_to(&mut self, src: &str, dst: &str, port: usize) -> &mut Self {
        self.connect((src, 0), (dst, port))
    }

    /// The system built so far.
    pub fn finish(self) -> System {
        self.system
    }
}

/// Builder for a complete [`Model`]. Dereferences to the root
/// [`SystemBuilder`] methods via delegation.
#[derive(Debug)]
pub struct ModelBuilder {
    name: String,
    root: SystemBuilder,
}

impl ModelBuilder {
    /// Start a model named `name`.
    pub fn new(name: impl Into<String>) -> ModelBuilder {
        ModelBuilder { name: name.into(), root: SystemBuilder::with_kind(SystemKind::Plain) }
    }

    /// The root system builder.
    pub fn root(&mut self) -> &mut SystemBuilder {
        &mut self.root
    }

    /// Add a leaf actor to the root system.
    pub fn actor(&mut self, name: &str, actor: impl Into<Actor>) -> &mut Self {
        self.root.actor(name, actor);
        self
    }

    /// Add a root `Inport`.
    pub fn inport(&mut self, name: &str, dtype: DataType) -> &mut Self {
        self.root.inport(name, dtype);
        self
    }

    /// Add a root `Outport`.
    pub fn outport(&mut self, name: &str, dtype: DataType) -> &mut Self {
        self.root.outport(name, dtype);
        self
    }

    /// Add a root `Constant`.
    pub fn constant(&mut self, name: &str, value: Scalar) -> &mut Self {
        self.root.constant(name, value);
        self
    }

    /// Add a root subsystem.
    pub fn subsystem(
        &mut self,
        name: &str,
        kind: SystemKind,
        build: impl FnOnce(&mut SystemBuilder),
    ) -> &mut Self {
        self.root.subsystem(name, kind, build);
        self
    }

    /// Connect ports in the root system.
    pub fn connect(&mut self, src: impl Into<PortRef>, dst: impl Into<PortRef>) -> &mut Self {
        self.root.connect(src, dst);
        self
    }

    /// Connect port 0 to port 0 in the root system.
    pub fn wire(&mut self, src: &str, dst: &str) -> &mut Self {
        self.root.wire(src, dst);
        self
    }

    /// Connect output 0 of `src` to input `port` of `dst`.
    pub fn wire_to(&mut self, src: &str, dst: &str, port: usize) -> &mut Self {
        self.root.wire_to(src, dst, port);
        self
    }

    /// Finish and validate.
    ///
    /// # Errors
    ///
    /// Returns any structural [`ModelError`] found by [`Model::validate`].
    pub fn build(self) -> Result<Model, ModelError> {
        let model = Model::new(self.name, self.root.finish());
        model.validate()?;
        Ok(model)
    }

    /// Finish without validating (for tests that need invalid models).
    pub fn build_unchecked(self) -> Model {
        Model::new(self.name, self.root.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::SwitchCriteria;

    fn passthrough() -> ModelBuilder {
        let mut b = ModelBuilder::new("M");
        b.inport("In", DataType::I32);
        b.outport("Out", DataType::I32);
        b.wire("In", "Out");
        b
    }

    #[test]
    fn minimal_model_validates() {
        let m = passthrough().build().unwrap();
        assert_eq!(m.root.actor_count(), 2);
        assert_eq!(m.root.subsystem_count(), 0);
    }

    #[test]
    fn duplicate_block_rejected() {
        let mut b = ModelBuilder::new("M");
        b.constant("C", Scalar::I32(1));
        b.constant("C", Scalar::I32(2));
        let err = b.build().unwrap_err();
        assert!(matches!(err, ModelError::DuplicateBlock { .. }));
    }

    #[test]
    fn unknown_block_in_line_rejected() {
        let mut b = ModelBuilder::new("M");
        b.outport("Out", DataType::I32);
        b.wire("Ghost", "Out");
        assert!(matches!(b.build().unwrap_err(), ModelError::UnknownBlock { .. }));
    }

    #[test]
    fn invalid_port_rejected() {
        let mut b = ModelBuilder::new("M");
        b.constant("C", Scalar::I32(1));
        b.outport("Out", DataType::I32);
        b.connect(("C", 1), ("Out", 0));
        let err = b.build().unwrap_err();
        assert!(matches!(err, ModelError::InvalidPort { port: 1, output: true, .. }));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut b = ModelBuilder::new("M");
        b.constant("C1", Scalar::I32(1));
        b.constant("C2", Scalar::I32(2));
        b.outport("Out", DataType::I32);
        b.wire("C1", "Out");
        b.wire("C2", "Out");
        assert!(matches!(b.build().unwrap_err(), ModelError::MultipleDrivers { .. }));
    }

    #[test]
    fn unconnected_input_rejected() {
        let mut b = ModelBuilder::new("M");
        b.actor("Abs", ActorKind::Abs);
        let err = b.build().unwrap_err();
        assert!(matches!(err, ModelError::UnconnectedInput { port: 0, .. }));
    }

    #[test]
    fn bad_sum_signs_rejected() {
        let mut b = passthrough();
        b.constant("C", Scalar::I32(1));
        b.actor("S", ActorKind::Sum { signs: "+x".into() });
        b.wire("C", "S");
        b.connect(("C", 0), ("S", 1));
        let err = b.build().unwrap_err();
        assert!(matches!(err, ModelError::InvalidParameter { .. }));
    }

    #[test]
    fn data_store_reference_checked() {
        let mut b = passthrough();
        b.actor("R", ActorKind::DataStoreRead { store: "missing".into() });
        b.actor("T", ActorKind::Terminator);
        b.wire("R", "T");
        assert!(matches!(b.build().unwrap_err(), ModelError::UnknownDataStore { .. }));
    }

    #[test]
    fn duplicate_data_store_rejected() {
        let mut b = passthrough();
        b.actor("D1", ActorKind::DataStoreMemory { store: "q".into(), init: Scalar::I32(0) });
        b.actor("D2", ActorKind::DataStoreMemory { store: "q".into(), init: Scalar::I32(0) });
        assert!(matches!(b.build().unwrap_err(), ModelError::DuplicateDataStore { .. }));
    }

    #[test]
    fn subsystem_ports_counted() {
        let mut b = ModelBuilder::new("M");
        b.inport("X", DataType::F64);
        b.subsystem("Sub", SystemKind::Plain, |s| {
            s.inport("u", DataType::F64);
            s.outport("y", DataType::F64);
            s.wire("u", "y");
        });
        b.outport("Y", DataType::F64);
        b.wire("X", "Sub");
        b.wire("Sub", "Y");
        let m = b.build().unwrap();
        let sub = m.root.block("Sub").unwrap();
        assert_eq!(sub.in_count(), 1);
        assert_eq!(sub.out_count(), 1);
        assert_eq!(m.root.subsystem_count(), 1);
        assert_eq!(m.root.actor_count(), 4);
    }

    #[test]
    fn conditional_subsystem_has_control_port() {
        let mut b = ModelBuilder::new("M");
        b.inport("X", DataType::F64);
        b.constant("En", Scalar::Bool(true));
        b.subsystem("Sub", SystemKind::Enabled, |s| {
            s.inport("u", DataType::F64);
            s.outport("y", DataType::F64);
            s.wire("u", "y");
        });
        b.outport("Y", DataType::F64);
        b.wire("X", "Sub");
        b.wire_to("En", "Sub", 1); // control port is the last input
        b.wire("Sub", "Y");
        let m = b.build().unwrap();
        assert_eq!(m.root.block("Sub").unwrap().in_count(), 2);
    }

    #[test]
    fn gapped_inport_indices_rejected() {
        let mut b = ModelBuilder::new("M");
        b.actor("In", Actor::new(ActorKind::Inport { index: 1 }).with_dtype(DataType::I32));
        b.outport("Out", DataType::I32);
        b.wire("In", "Out");
        assert!(matches!(b.build().unwrap_err(), ModelError::Structural { .. }));
    }

    #[test]
    fn lookup_breakpoints_must_increase() {
        let mut b = passthrough();
        b.constant("C", Scalar::F64(0.0));
        b.actor(
            "L",
            ActorKind::Lookup1D {
                breakpoints: vec![1.0, 1.0],
                table: vec![0.0, 1.0],
                method: crate::actor::LookupMethod::Interpolate,
            },
        );
        b.actor("T", ActorKind::Terminator);
        b.wire("C", "L");
        b.wire("L", "T");
        assert!(matches!(b.build().unwrap_err(), ModelError::InvalidParameter { .. }));
    }

    #[test]
    fn switch_requires_three_connections() {
        let mut b = ModelBuilder::new("M");
        b.constant("C", Scalar::F64(1.0));
        b.actor("Sw", ActorKind::Switch { criteria: SwitchCriteria::NotEqualZero });
        b.outport("Out", DataType::F64);
        b.wire("C", "Sw");
        b.wire("Sw", "Out");
        // inputs 1 and 2 of the switch are unconnected
        assert!(matches!(b.build().unwrap_err(), ModelError::UnconnectedInput { .. }));
    }

    #[test]
    fn system_kind_roundtrip() {
        for k in [SystemKind::Plain, SystemKind::Enabled, SystemKind::Triggered] {
            assert_eq!(SystemKind::parse(k.name()), Some(k));
        }
        assert!(SystemKind::Enabled.is_conditional());
        assert!(!SystemKind::Plain.is_conditional());
    }
}
