//! # accmos-models
//!
//! The benchmark model suite from the AccMoS paper: synthetic re-creations
//! of the ten industrial Table 1 models (matching actor/subsystem counts
//! and domain), the Figure 1 motivating example, and the fault-injected
//! CSEV variants of the §4 error-diagnosis case study.
//!
//! ## Example
//!
//! ```
//! let model = accmos_models::figure1();
//! let pre = accmos_graph::preprocess(&model)?;
//! assert_eq!(pre.flat.actors.len(), 6);
//!
//! let csev = accmos_models::by_name("CSEV");
//! assert_eq!(csev.root.actor_count(), 152);
//! assert_eq!(csev.root.subsystem_count(), 17);
//! # Ok::<(), accmos_ir::ModelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod benchmarks;
mod parts;

pub use benchmarks::{
    all_benchmarks, by_name, cput, csev, csev_variant, fmtm, lans, ledlc, rac, spv, tcp, twc,
    utpc, CsevFault, TABLE1,
};

use accmos_ir::{ActorKind, DataType, Model, ModelBuilder, Scalar};

/// The paper's Figure 1 motivating model: two input accumulators feeding a
/// sum whose `int32` output wraps after a long simulation.
pub fn figure1() -> Model {
    let mut b = ModelBuilder::new("Sample");
    b.inport("A", DataType::I32);
    b.inport("B", DataType::I32);
    b.actor("AccA", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
    b.actor("AccB", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
    b.actor("Sum", ActorKind::Sum { signs: "++".into() });
    b.outport("Out", DataType::I32);
    b.connect(("A", 0), ("AccA", 0));
    b.connect(("B", 0), ("AccB", 0));
    b.connect(("AccA", 0), ("Sum", 0));
    b.connect(("AccB", 0), ("Sum", 1));
    b.connect(("Sum", 0), ("Out", 0));
    b.build().expect("figure1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use accmos_graph::preprocess;

    #[test]
    fn table1_counts_match_exactly() {
        for (name, actors, subsystems) in TABLE1 {
            let model = by_name(name);
            assert_eq!(
                model.root.actor_count(),
                actors,
                "{name}: actor count (Table 1 says {actors})"
            );
            assert_eq!(
                model.root.subsystem_count(),
                subsystems,
                "{name}: subsystem count (Table 1 says {subsystems})"
            );
        }
    }

    #[test]
    fn all_benchmarks_preprocess() {
        for model in all_benchmarks() {
            let pre = preprocess(&model).unwrap_or_else(|e| panic!("{}: {e}", model.name));
            assert_eq!(pre.flat.order.len(), pre.flat.actors.len(), "{}", model.name);
            assert!(!pre.flat.root_inports.is_empty(), "{}", model.name);
            assert!(!pre.flat.root_outports.is_empty(), "{}", model.name);
        }
    }

    #[test]
    fn figure1_matches_paper_structure() {
        let model = figure1();
        assert_eq!(model.root.actor_count(), 6);
        assert_eq!(model.root.subsystem_count(), 0);
    }

    #[test]
    fn csev_variants_differ_only_where_injected() {
        let base = csev();
        let q = csev_variant(CsevFault::Quantity);
        let p = csev_variant(CsevFault::Power);
        assert_eq!(base.root.actor_count(), q.root.actor_count());
        assert_eq!(base.root.actor_count(), p.root.actor_count());
        assert_ne!(base, q);
        assert_ne!(base, p);
    }

    #[test]
    fn compute_heavy_models_have_more_calculation_actors() {
        // The paper attributes LANS/LEDLC/SPV/TCP's higher speedups to a
        // larger computational share.
        let ratio = |name: &str| {
            let pre = preprocess(&by_name(name)).unwrap();
            pre.flat.calculation_count() as f64 / pre.flat.actors.len() as f64
        };
        let compute = (ratio("LANS") + ratio("SPV")) / 2.0;
        let control = (ratio("CPUT") + ratio("FMTM")) / 2.0;
        assert!(
            compute > control,
            "computational share should be higher for LANS/SPV: {compute:.2} vs {control:.2}"
        );
    }

    #[test]
    fn models_roundtrip_through_mdlx() {
        for name in ["CSEV", "SPV", "TWC"] {
            let model = by_name(name);
            let text = accmos_parse::write_mdlx(&model);
            let back = accmos_parse::parse_mdlx(&text)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, model, "{name} mdlx roundtrip");
        }
    }
}
