//! The ten benchmark models of the paper's Table 1.
//!
//! The originals are proprietary industrial models; these are synthetic
//! re-creations matching each model's **functional domain**, its **actor
//! and subsystem counts**, and the compute-vs-control mix the paper's
//! Table 2 analysis describes (LANS/LEDLC/SPV/TCP are computation-heavy;
//! the others are control-heavy). Remaining actor budget is spent on
//! telemetry test points (`Scope` sinks on real signals), as industrial
//! models commonly carry.
//!
//! | Model | #Actor | #SubSystem | Domain |
//! |-------|--------|------------|--------|
//! | CPUT  | 275    | 27 | AutoSAR CPU task dispatch |
//! | CSEV  | 152    | 17 | EV charging system |
//! | FMTM  | 276    | 42 | Factory multi-point temperature monitor |
//! | LANS  | 570    | 39 | LAN switch controller |
//! | LEDLC | 170    | 31 | LED light controller |
//! | RAC   | 667    | 57 | Robotic arm controller |
//! | SPV   | 131    | 16 | Solar PV output control |
//! | TCP   | 330    | 42 | TCP three-way handshake |
//! | TWC   | 214    | 13 | Train wheel speed controller |
//! | UTPC  | 214    | 21 | Underwater thruster power control |

use crate::parts;
use accmos_ir::{
    Actor, ActorKind, DataType, LogicOp, MathOp, MinMaxOp, Model, ModelBuilder, RelOp, Scalar,
    SwitchCriteria, SystemKind, Value,
};

/// `(name, actors, subsystems)` for every Table 1 row.
pub const TABLE1: [(&str, usize, usize); 10] = [
    ("CPUT", 275, 27),
    ("CSEV", 152, 17),
    ("FMTM", 276, 42),
    ("LANS", 570, 39),
    ("LEDLC", 170, 31),
    ("RAC", 667, 57),
    ("SPV", 131, 16),
    ("TCP", 330, 42),
    ("TWC", 214, 13),
    ("UTPC", 214, 21),
];

/// Build a benchmark model by its Table 1 name.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn by_name(name: &str) -> Model {
    match name {
        "CPUT" => cput(),
        "CSEV" => csev(),
        "FMTM" => fmtm(),
        "LANS" => lans(),
        "LEDLC" => ledlc(),
        "RAC" => rac(),
        "SPV" => spv(),
        "TCP" => tcp(),
        "TWC" => twc(),
        "UTPC" => utpc(),
        other => panic!("unknown benchmark model `{other}`"),
    }
}

/// All ten benchmarks, in Table 1 order.
pub fn all_benchmarks() -> Vec<Model> {
    TABLE1.iter().map(|(name, _, _)| by_name(name)).collect()
}

// ---------------------------------------------------------------------------
// shared glue
// ---------------------------------------------------------------------------

/// Add `count` telemetry test points cycling over the given root-level
/// signal taps.
fn add_testpoints(b: &mut ModelBuilder, taps: &[(&str, usize)], count: usize) {
    assert!(!taps.is_empty(), "need at least one tap");
    for i in 0..count {
        let name = format!("TP{i}");
        b.actor(&name, ActorKind::Scope);
        let (block, port) = taps[i % taps.len()];
        b.connect((block, port), (name.as_str(), 0));
    }
}

/// Decode a `u8` mode signal into `n` one-hot enable signals, gated by
/// `enable`. Adds `2 + 2n` actors (`ModeSel` = mode % n, plus a
/// compare+and pair per mode). Returns the enable block names.
fn mode_decoder(b: &mut ModelBuilder, mode: &str, enable: &str, n: usize) -> Vec<String> {
    b.actor("ModeN", ActorKind::Constant { value: Value::scalar(Scalar::U8(n as u8)) });
    b.actor("ModeSel", ActorKind::Math { op: MathOp::Rem });
    b.connect((mode, 0), ("ModeSel", 0));
    b.connect(("ModeN", 0), ("ModeSel", 1));
    let mut enables = Vec::new();
    for k in 0..n {
        let cmp = format!("IsMode{k}");
        let en = format!("EnMode{k}");
        b.actor(
            &cmp,
            ActorKind::CompareToConstant { op: RelOp::Eq, constant: Scalar::U8(k as u8) },
        );
        b.actor(&en, ActorKind::Logical { op: LogicOp::And, inputs: 2 });
        b.connect(("ModeSel", 0), (cmp.as_str(), 0));
        b.connect((cmp.as_str(), 0), (en.as_str(), 0));
        b.connect((enable, 0), (en.as_str(), 1));
        enables.push(en);
    }
    enables
}

/// Add a mission-phase clock and `count - 1` staggered phase gates
/// (`Phase1..`), where gate `k` turns on once the clock reaches
/// `threshold(k)` steps. Deep stages of a model activate one by one over
/// exponentially longer horizons — the slowly-ramping coverage of the
/// paper's Table 3. Adds `count` actors. Returns the gate block names
/// (entry 0 is unused).
fn phase_gates(
    b: &mut ModelBuilder,
    count: usize,
    threshold: impl Fn(usize) -> i128,
) -> Vec<String> {
    b.actor(
        "MissionClock",
        Actor::new(ActorKind::Counter { limit: u64::MAX / 2 }).with_dtype(DataType::I64),
    );
    let mut gates = vec![String::new()];
    for k in 1..count {
        let name = format!("Phase{k}");
        b.actor(
            &name,
            ActorKind::CompareToConstant {
                op: RelOp::Ge,
                constant: Scalar::I64(threshold(k).min(i64::MAX as i128) as i64),
            },
        );
        b.wire("MissionClock", &name);
        gates.push(name);
    }
    gates
}

/// Build with zero pad first to measure, then with the exact pad.
fn sized(target_actors: usize, build: impl Fn(usize) -> Model) -> Model {
    let base = build(0);
    let have = base.root.actor_count();
    assert!(
        have <= target_actors && target_actors - have <= 45,
        "structural actor count {have} too far from target {target_actors} for {}",
        base.name
    );
    build(target_actors - have)
}

// ---------------------------------------------------------------------------
// CPUT — AutoSAR CPU task dispatch (275 actors, 27 subsystems)
// ---------------------------------------------------------------------------

/// AutoSAR CPU task dispatch system: 13 prioritised task slots, each an
/// enabled subsystem paired with a deadline monitor, plus a scheduler.
pub fn cput() -> Model {
    sized(275, |pad| {
        let mut b = ModelBuilder::new("CPUT");
        b.inport("Tick", DataType::Bool);
        b.inport("Load", DataType::I32);
        b.inport("Prio", DataType::U8);
        b.inport("Enable", DataType::Bool);

        // Physical load range: the dispatcher sees a bounded utilisation
        // figure, so budget exhaustion times stay calibrated.
        b.actor("LoadClamp", ActorKind::Saturation { lo: -100.0, hi: 100.0 });
        b.wire("Load", "LoadClamp");
        let gates = phase_gates(&mut b, 13, |k| 48 << (2 * k));
        let enables = mode_decoder(&mut b, "Prio", "Enable", 13);
        let mut taps: Vec<(String, usize)> = Vec::new();
        for (k, en) in enables.iter().enumerate() {
            let task = format!("Task{k}");
            // Budgets staggered exponentially: deeper tasks exhaust (and
            // flip their fallback switch) only on much longer horizons.
            let budget = 400i128 << (2 * k.min(14));
            b.subsystem(&task, SystemKind::Enabled, move |s| {
                parts::task10(s, DataType::I32, budget)
            });
            b.connect(("LoadClamp", 0), (task.as_str(), 0));
            b.connect((en.as_str(), 0), (task.as_str(), 1)); // control
            let mon = format!("Deadline{k}");
            if k == 0 {
                b.subsystem(&mon, SystemKind::Plain, |s| {
                    parts::monitor6(s, DataType::I32, 40, -40)
                });
            } else {
                // Armed one mission phase at a time: deeper monitors only
                // execute on exponentially longer runs (the Table 3 ramp).
                let hi = 20i128 << k.min(20);
                b.subsystem(&mon, SystemKind::Enabled, move |s| {
                    parts::monitor6(s, DataType::I32, hi, -hi)
                });
            }
            b.connect((task.as_str(), 0), (mon.as_str(), 0));
            if k > 0 {
                b.connect((gates[k].as_str(), 0), (mon.as_str(), 1));
            }
            taps.push((task, 0));
        }
        // Scheduler: picks the active budget by priority band.
        b.subsystem("Scheduler", SystemKind::Plain, |s| {
            s.inport("load", DataType::I32);
            s.inport("band", DataType::U8);
            for c in 0..4 {
                s.constant(&format!("Q{c}"), Scalar::I32(10 * (c + 1)));
            }
            s.actor("Pick", ActorKind::MultiportSwitch { cases: 4 });
            s.actor("Busy", ActorKind::CompareToConstant {
                op: RelOp::Gt,
                constant: Scalar::I32(20),
            });
            s.outport("quota", DataType::I32);
            s.outport("busy", DataType::Bool);
            s.connect(("band", 0), ("Pick", 0));
            for c in 0..4 {
                s.connect((format!("Q{c}").as_str(), 0), ("Pick", c + 1));
            }
            s.wire("load", "Busy");
            s.wire("Pick", "quota");
            s.wire("Busy", "busy");
        });
        b.connect(("Load", 0), ("Scheduler", 0));
        b.connect(("Prio", 0), ("Scheduler", 1));

        // Aggregate task budgets.
        b.actor("TotalA", ActorKind::Sum { signs: "+++++++".into() });
        b.actor("TotalB", ActorKind::Sum { signs: "++++++".into() });
        b.actor("Total", ActorKind::Sum { signs: "++".into() });
        for k in 0..7 {
            b.connect((format!("Task{k}").as_str(), 0), ("TotalA", k));
        }
        for k in 7..13 {
            b.connect((format!("Task{k}").as_str(), 0), ("TotalB", k - 7));
        }
        b.connect(("TotalA", 0), ("Total", 0));
        b.connect(("TotalB", 0), ("Total", 1));
        b.actor("AnyAlarm", ActorKind::Logical { op: LogicOp::Or, inputs: 13 });
        for k in 0..13 {
            b.connect((format!("Deadline{k}").as_str(), 0), ("AnyAlarm", k));
        }
        b.outport("CpuBudget", DataType::I32);
        b.outport("Overrun", DataType::Bool);
        b.outport("Quota", DataType::I32);
        b.wire("Total", "CpuBudget");
        b.wire("AnyAlarm", "Overrun");
        b.connect(("Scheduler", 0), ("Quota", 0));

        let tap_refs: Vec<(&str, usize)> =
            taps.iter().map(|(n, p)| (n.as_str(), *p)).collect();
        add_testpoints(&mut b, &tap_refs, pad);
        b.build().expect("CPUT")
    })
}

// ---------------------------------------------------------------------------
// CSEV — EV charging system (152 actors, 17 subsystems)
// ---------------------------------------------------------------------------

/// EV charging system with 8 charging modes, battery filters, safety
/// monitors, and the `quantity` data-store accumulator of the paper's
/// case study.
pub fn csev() -> Model {
    csev_variant(CsevFault::None)
}

/// Which fault to inject into [`csev`] (paper §4 case study).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsevFault {
    /// The unmodified model.
    None,
    /// Fault 1: the charge `quantity` accumulator is driven hard enough
    /// that its `int32` range wraps during a long run.
    Quantity,
    /// Fault 2: the charging-power product writes to a `short int`
    /// output, a downcast that wraps immediately.
    Power,
}

/// Build CSEV with an injected fault (see [`CsevFault`]).
pub fn csev_variant(fault: CsevFault) -> Model {
    sized(152, move |pad| {
        let mut b = ModelBuilder::new("CSEV");
        b.inport("Mode", DataType::U8);
        b.inport("Volt", DataType::I32);
        b.inport("Amp", DataType::I32);
        b.inport("Plug", DataType::Bool);

        b.actor(
            "Quantity",
            ActorKind::DataStoreMemory { store: "quantity".into(), init: Scalar::I32(0) },
        );
        // Sensor conditioning: physical voltage/current ranges, so the
        // nominal model stays free of arithmetic wrap under any stimulus.
        b.actor("VoltSense", ActorKind::Saturation { lo: 0.0, hi: 1000.0 });
        b.actor("AmpSense", ActorKind::Saturation { lo: 0.0, hi: 500.0 });
        b.wire("Volt", "VoltSense");
        b.wire("Amp", "AmpSense");

        let enables = mode_decoder(&mut b, "Mode", "Plug", 8);
        for (k, en) in enables.iter().enumerate() {
            let name = format!("Charge{k}");
            if fault == CsevFault::Power && k == 0 {
                // Fault 2: the power product writes to a `short int` while
                // its voltage/current inputs stay `int` — the downcast of
                // the paper's case study. Same actor count as power7.
                b.subsystem(&name, SystemKind::Enabled, |s| {
                    s.inport("v", DataType::I32);
                    s.inport("i", DataType::I32);
                    s.actor(
                        "P",
                        Actor::new(ActorKind::Product { ops: "**".into() })
                            .with_dtype(DataType::I16),
                    );
                    s.actor("Eff", ActorKind::Gain { gain: Scalar::I16(9) });
                    s.actor("Limit", ActorKind::Saturation { lo: 0.0, hi: 1_000_000.0 });
                    s.outport("p", DataType::I32);
                    s.connect(("v", 0), ("P", 0));
                    s.connect(("i", 0), ("P", 1));
                    s.wire("P", "Eff");
                    s.wire("Eff", "Limit");
                    s.wire("Limit", "p");
                });
            } else {
                b.subsystem(&name, SystemKind::Enabled, |s| parts::power7(s, DataType::I32));
            }
            b.connect(("VoltSense", 0), (name.as_str(), 0));
            b.connect(("AmpSense", 0), (name.as_str(), 1));
            b.connect((en.as_str(), 0), (name.as_str(), 2));
        }
        b.actor("Power", ActorKind::Merge { inputs: 8 });
        for k in 0..8 {
            b.connect((format!("Charge{k}").as_str(), 0), ("Power", k));
        }

        let gates = phase_gates(&mut b, 4, |k| 60 << (4 * k));
        for (k, gate) in gates.iter().enumerate() {
            let name = format!("Safety{k}");
            let hi = 1000i128 << (3 * k);
            if k == 0 {
                b.subsystem(&name, SystemKind::Plain, move |s| {
                    parts::monitor6(s, DataType::I32, hi, -hi)
                });
            } else {
                b.subsystem(&name, SystemKind::Enabled, move |s| {
                    parts::monitor6(s, DataType::I32, hi, -hi)
                });
            }
            let src = if k % 2 == 0 { "VoltSense" } else { "AmpSense" };
            b.connect((src, 0), (name.as_str(), 0));
            if k > 0 {
                b.connect((gate.as_str(), 0), (name.as_str(), 1));
            }
        }
        for k in 0..4 {
            let name = format!("Cell{k}");
            b.subsystem(&name, SystemKind::Plain, |s| parts::filter5(s, DataType::I32));
            b.connect(("Power", 0), (name.as_str(), 0));
        }

        // Charge accumulator on the `quantity` data store. Fault 1 scales
        // the increment so the int32 store wraps within a long run.
        // Fault 1 multiplies the charge increment so the int32 `quantity`
        // store wraps within tens of thousands of steps instead of
        // millions — still a long-run error, found quickly only by the
        // compiled simulator.
        let boost: i128 = if fault == CsevFault::Quantity { 256 } else { 1 };
        b.subsystem("Accumulate", SystemKind::Plain, move |s| {
            s.inport("p", DataType::I32);
            // Physical charging power is bounded; the accumulator wraps
            // from *accumulation*, not from a single wild sample.
            s.actor("Range", ActorKind::Saturation { lo: 0.0, hi: 500.0 });
            s.actor("Old", ActorKind::DataStoreRead { store: "quantity".into() });
            s.actor("Scale", ActorKind::Gain { gain: Scalar::from_i128(DataType::I32, boost) });
            s.actor("Add", ActorKind::Sum { signs: "++".into() });
            s.actor("Store", ActorKind::DataStoreWrite { store: "quantity".into() });
            s.outport("q", DataType::I32);
            s.wire("p", "Range");
            s.wire("Range", "Scale");
            s.connect(("Old", 0), ("Add", 0));
            s.connect(("Scale", 0), ("Add", 1));
            s.wire("Add", "Store");
            s.wire("Add", "q");
        });
        b.connect(("Power", 0), ("Accumulate", 0));

        b.actor("AnyFault", ActorKind::Logical { op: LogicOp::Or, inputs: 4 });
        for k in 0..4 {
            b.connect((format!("Safety{k}").as_str(), 0), ("AnyFault", k));
        }
        b.outport("ChargedQ", DataType::I32);
        b.outport("Fault", DataType::Bool);
        b.outport("PowerOut", DataType::I32);
        b.connect(("Accumulate", 0), ("ChargedQ", 0));
        b.wire("AnyFault", "Fault");
        b.connect(("Power", 0), ("PowerOut", 0));

        add_testpoints(
            &mut b,
            &[("Power", 0), ("Accumulate", 0), ("Cell0", 0), ("Cell1", 0)],
            pad,
        );
        b.build().expect("CSEV")
    })
}

// ---------------------------------------------------------------------------
// FMTM — factory multi-point temperature monitor (276 actors, 42 subsystems)
// ---------------------------------------------------------------------------

/// Factory temperature monitor: 20 sensor points (each with a nested
/// enabled calibration stage), two min/max aggregators.
pub fn fmtm() -> Model {
    sized(276, |pad| {
        let mut b = ModelBuilder::new("FMTM");
        b.inport("Scan", DataType::Bool);
        b.inport("Ambient", DataType::I32);
        b.inport("Limit", DataType::I32);

        for k in 0..20 {
            let noise = format!("Noise{k}");
            b.actor(&noise, Actor::new(ActorKind::RandomNumber { seed: 40 + k }).with_dtype(DataType::I8));
            let mix = format!("Sense{k}");
            b.actor(&mix, Actor::new(ActorKind::Sum { signs: "++".into() }).with_dtype(DataType::I32));
            b.connect(("Ambient", 0), (mix.as_str(), 0));
            b.connect((noise.as_str(), 0), (mix.as_str(), 1));

            let point = format!("Point{k}");
            b.subsystem(&point, SystemKind::Plain, |s| {
                s.inport("t", DataType::I32);
                s.inport("scan", DataType::Bool);
                s.actor("Offset", ActorKind::Bias { bias: Scalar::I32(-4) });
                s.subsystem("Calib", SystemKind::Enabled, |c| {
                    parts::calib4(c, DataType::I32)
                });
                s.actor("Alarm", ActorKind::CompareToConstant {
                    op: RelOp::Gt,
                    constant: Scalar::I32(50),
                });
                s.outport("temp", DataType::I32);
                s.outport("hot", DataType::Bool);
                s.wire("t", "Offset");
                s.wire_to("Offset", "Calib", 0);
                s.connect(("scan", 0), ("Calib", 1)); // control
                s.wire("Calib", "Alarm");
                s.connect(("Calib", 0), ("temp", 0));
                s.wire("Alarm", "hot");
            });
            b.connect((mix.as_str(), 0), (point.as_str(), 0));
            b.connect(("Scan", 0), (point.as_str(), 1));
        }

        b.subsystem("HottestA", SystemKind::Plain, |s| {
            parts::agg7(s, DataType::I32, MinMaxOp::Max)
        });
        b.subsystem("ColdestA", SystemKind::Plain, |s| {
            parts::agg7(s, DataType::I32, MinMaxOp::Min)
        });
        for (i, agg) in ["HottestA", "ColdestA"].iter().enumerate() {
            for p in 0..4 {
                b.connect((format!("Point{}", i * 4 + p).as_str(), 0), (*agg, p));
            }
        }
        b.actor("AnyHot", ActorKind::Logical { op: LogicOp::Or, inputs: 20 });
        for k in 0..20 {
            b.connect((format!("Point{k}").as_str(), 1), ("AnyHot", k));
        }
        b.actor("OverLimit", ActorKind::Relational { op: RelOp::Gt });
        b.connect(("HottestA", 0), ("OverLimit", 0));
        b.connect(("Limit", 0), ("OverLimit", 1));

        b.outport("MaxTemp", DataType::I32);
        b.outport("MinTemp", DataType::I32);
        b.outport("HotAlarm", DataType::Bool);
        b.outport("LimitAlarm", DataType::Bool);
        b.connect(("HottestA", 0), ("MaxTemp", 0));
        b.connect(("ColdestA", 0), ("MinTemp", 0));
        b.wire("AnyHot", "HotAlarm");
        b.wire("OverLimit", "LimitAlarm");

        add_testpoints(&mut b, &[("Point0", 0), ("Point1", 0), ("HottestA", 0)], pad);
        b.build().expect("FMTM")
    })
}

// ---------------------------------------------------------------------------
// LANS — LAN switch controller (570 actors, 39 subsystems, compute-heavy)
// ---------------------------------------------------------------------------

/// LAN switch: 24 port pipelines (CRC, byte counting), 12 queue stages,
/// 3 fabric crossbars — heavy on arithmetic, as the paper's Table 2
/// analysis requires.
pub fn lans() -> Model {
    sized(570, |pad| {
        let mut b = ModelBuilder::new("LANS");
        b.inport("Traffic", DataType::U32);
        b.inport("Rate", DataType::I32);
        b.inport("Route", DataType::U8);
        b.inport("Up", DataType::Bool);

        for k in 0..24u64 {
            let src = format!("Rx{k}");
            b.actor(&src, Actor::new(ActorKind::RandomNumber { seed: 900 + k }).with_dtype(DataType::U32));
            let port = format!("Port{k}");
            b.subsystem(&port, SystemKind::Plain, |s| {
                // 16 actors: 2 in + 12 body + 2 out
                s.inport("pkt", DataType::U32);
                s.inport("rate", DataType::I32);
                s.actor("Crc", ActorKind::Bitwise { op: accmos_ir::BitOp::Xor });
                s.actor("Rot", ActorKind::Shift { dir: accmos_ir::ShiftDir::Left, amount: 3 });
                s.actor("Z", ActorKind::UnitDelay { init: Scalar::U32(0xFFFF) });
                s.actor("Bytes", Actor::new(ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I64(0) }));
                s.actor("Load", ActorKind::Sum { signs: "++".into() });
                s.actor("K", ActorKind::Gain { gain: Scalar::I32(3) });
                s.actor("Off", ActorKind::Bias { bias: Scalar::I32(11) });
                s.actor("Sq", ActorKind::Math { op: MathOp::Square });
                s.actor("Mag", ActorKind::Abs);
                s.actor("Clip", ActorKind::Saturation { lo: 0.0, hi: 1_000_000.0 });
                s.actor("Busy", ActorKind::CompareToConstant {
                    op: RelOp::Gt,
                    constant: Scalar::I32(1000),
                });
                s.outport("crc", DataType::U32);
                s.outport("load", DataType::I32);
                s.connect(("pkt", 0), ("Crc", 0));
                s.connect(("Z", 0), ("Crc", 1));
                s.wire("Crc", "Rot");
                s.wire_to("Rot", "Z", 0);
                s.wire("pkt", "Bytes");
                s.connect(("rate", 0), ("Load", 0));
                s.connect(("Bytes", 0), ("Load", 1));
                s.wire("Load", "K");
                s.wire("K", "Off");
                s.wire("Off", "Sq");
                s.wire("Sq", "Mag");
                s.actor("Scale", ActorKind::Gain { gain: Scalar::I32(2) });
                s.wire("Mag", "Scale");
                s.wire("Scale", "Clip");
                s.wire("Clip", "Busy");
                s.connect(("Rot", 0), ("crc", 0));
                s.connect(("Clip", 0), ("load", 0));
            });
            b.connect((src.as_str(), 0), (port.as_str(), 0));
            b.connect(("Rate", 0), (port.as_str(), 1));
        }

        for k in 0..12 {
            let q = format!("Queue{k}");
            b.subsystem(&q, SystemKind::Plain, |s| parts::filter8(s, DataType::I32));
            b.connect((format!("Port{}", k * 2).as_str(), 1), (q.as_str(), 0));
        }

        for k in 0..3 {
            let fab = format!("Fabric{k}");
            b.subsystem(&fab, SystemKind::Plain, |s| {
                // 12 actors: 5 in + 5 body + 2 out
                s.inport("sel", DataType::U8);
                for p in 0..4 {
                    s.inport(&format!("q{p}"), DataType::I32);
                }
                s.actor("Xbar", ActorKind::MultiportSwitch { cases: 4 });
                s.actor("Mix", ActorKind::Sum { signs: "++++".into() });
                s.actor("Gain", ActorKind::Gain { gain: Scalar::I32(2) });
                s.actor("Acc", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
                s.actor("Off", ActorKind::Bias { bias: Scalar::I32(5) });
                s.outport("out", DataType::I32);
                s.outport("acc", DataType::I32);
                s.connect(("sel", 0), ("Xbar", 0));
                for p in 0..4 {
                    s.connect((format!("q{p}").as_str(), 0), ("Xbar", p + 1));
                    s.connect((format!("q{p}").as_str(), 0), ("Mix", p));
                }
                s.wire("Mix", "Gain");
                s.wire("Gain", "Off");
                s.wire("Off", "Acc");
                s.connect(("Xbar", 0), ("out", 0));
                s.connect(("Acc", 0), ("acc", 0));
            });
            b.connect(("Route", 0), (fab.as_str(), 0));
            for p in 0..4 {
                b.connect((format!("Queue{}", k * 4 + p).as_str(), 0), (fab.as_str(), p + 1));
            }
        }

        b.actor("TotalLoad", ActorKind::Sum { signs: "+++".into() });
        for k in 0..3 {
            b.connect((format!("Fabric{k}").as_str(), 1), ("TotalLoad", k));
        }
        b.outport("SwitchLoad", DataType::I32);
        b.outport("Tx0", DataType::I32);
        b.outport("LinkUp", DataType::Bool);
        b.wire("TotalLoad", "SwitchLoad");
        b.connect(("Fabric0", 0), ("Tx0", 0));
        b.connect(("Up", 0), ("LinkUp", 0));

        add_testpoints(&mut b, &[("Port0", 0), ("Port1", 1), ("Queue0", 0), ("Fabric0", 0)], pad);
        b.build().expect("LANS")
    })
}

// ---------------------------------------------------------------------------
// LEDLC — LED light controller (170 actors, 31 subsystems, compute-heavy)
// ---------------------------------------------------------------------------

/// LED light controller: 24 PWM channels, 6 gamma-correction pipelines
/// and a master dimmer.
pub fn ledlc() -> Model {
    sized(170, |pad| {
        let mut b = ModelBuilder::new("LEDLC");
        b.inport("Brightness", DataType::I32);
        b.inport("Mode", DataType::U8);
        b.inport("On", DataType::Bool);

        b.subsystem("Dimmer", SystemKind::Plain, |s| {
            // 6 actors
            s.inport("raw", DataType::I32);
            s.actor("Clip", ActorKind::Saturation { lo: 0.0, hi: 15.0 });
            s.actor("Soft", ActorKind::RateLimiter { rising: 2.0, falling: -2.0 });
            s.actor("Z", ActorKind::UnitDelay { init: Scalar::I32(0) });
            s.outport("level", DataType::I32);
            s.wire("raw", "Clip");
            s.wire("Clip", "Soft");
            s.wire_to("Soft", "Z", 0);
            s.wire("Soft", "level");
        });
        b.wire_to("Brightness", "Dimmer", 0);

        for k in 0..6 {
            let g = format!("Gamma{k}");
            b.subsystem(&g, SystemKind::Plain, |s| {
                // 6 actors: quadratic gamma correction
                s.inport("u", DataType::I32);
                s.actor("Sq", ActorKind::Math { op: MathOp::Square });
                s.actor("K", ActorKind::Gain { gain: Scalar::I32(1) });
                s.actor("Off", ActorKind::Bias { bias: Scalar::I32(1) });
                s.outport("y", DataType::I32);
                s.wire("u", "Sq");
                s.wire("Sq", "K");
                s.wire("K", "Off");
                s.wire("Off", "y");
            });
            b.connect(("Dimmer", 0), (g.as_str(), 0));
        }
        for k in 0..24 {
            let ch = format!("Led{k}");
            b.subsystem(&ch, SystemKind::Plain, |s| parts::pwm5(s, DataType::I32));
            b.connect((format!("Gamma{}", k % 6).as_str(), 0), (ch.as_str(), 0));
        }

        b.actor("ModeOk", ActorKind::CompareToConstant { op: RelOp::Lt, constant: Scalar::U8(4) });
        b.wire("Mode", "ModeOk");
        b.actor("Lit", ActorKind::Logical { op: LogicOp::And, inputs: 3 });
        b.connect(("ModeOk", 0), ("Lit", 0));
        b.connect(("On", 0), ("Lit", 1));
        b.connect(("Led0", 0), ("Lit", 2));

        b.outport("Pwm0", DataType::Bool);
        b.outport("Level", DataType::I32);
        b.outport("Active", DataType::Bool);
        b.connect(("Led0", 0), ("Pwm0", 0));
        b.connect(("Dimmer", 0), ("Level", 0));
        b.wire("Lit", "Active");

        add_testpoints(&mut b, &[("Dimmer", 0), ("Gamma0", 0), ("Led1", 0)], pad);
        b.build().expect("LEDLC")
    })
}

// ---------------------------------------------------------------------------
// RAC — robotic arm controller (667 actors, 57 subsystems)
// ---------------------------------------------------------------------------

/// Six-joint robotic arm: per joint a cascaded controller (with nested
/// PID), motor driver and encoder; 30 safety monitors; 3 trajectory
/// generators.
pub fn rac() -> Model {
    sized(667, |pad| {
        let mut b = ModelBuilder::new("RAC");
        b.inport("X", DataType::I32);
        b.inport("Y", DataType::I32);
        b.inport("Zc", DataType::I32);
        b.inport("Run", DataType::Bool);

        // Inverse-kinematics-ish glue: one target per joint.
        for j in 0..6 {
            let g = format!("Ik{j}");
            let s = format!("IkOff{j}");
            b.actor(&g, ActorKind::Gain { gain: Scalar::I32(j as i64 as i32 % 3 + 1) });
            b.actor(&s, ActorKind::Bias { bias: Scalar::I32(j as i32 * 2 - 5) });
            let src = ["X", "Y", "Zc"][j % 3];
            b.wire(src, &g);
            b.wire(&g, &s);
        }

        for j in 0..3 {
            let t = format!("Traj{j}");
            b.subsystem(&t, SystemKind::Plain, |s| {
                // 12 actors: 1 in + 9 body + 2 out
                s.inport("target", DataType::I32);
                s.actor("Wave", Actor::new(ActorKind::SineWave {
                    amplitude: 20.0,
                    freq: 0.01,
                    phase: 0.0,
                    bias: 0.0,
                }).with_dtype(DataType::I32));
                s.actor("Ramp", Actor::new(ActorKind::Ramp { slope: 0.5, start: 10, initial: 0.0 })
                    .with_dtype(DataType::I32));
                s.actor("Mix", ActorKind::Sum { signs: "+++".into() });
                s.actor("Lim", ActorKind::Saturation { lo: -500.0, hi: 500.0 });
                s.actor("Slew", ActorKind::RateLimiter { rising: 8.0, falling: -8.0 });
                s.actor("Vel", ActorKind::DiscreteDerivative);
                s.actor("VelClip", ActorKind::Saturation { lo: -9.0, hi: 9.0 });
                s.outport("pos", DataType::I32);
                s.outport("vel", DataType::I32);
                s.connect(("target", 0), ("Mix", 0));
                s.connect(("Wave", 0), ("Mix", 1));
                s.connect(("Ramp", 0), ("Mix", 2));
                s.wire("Mix", "Lim");
                s.wire("Lim", "Slew");
                s.wire("Slew", "Vel");
                s.wire("Vel", "VelClip");
                s.connect(("Slew", 0), ("pos", 0));
                s.connect(("VelClip", 0), ("vel", 0));
            });
            b.connect((format!("IkOff{j}").as_str(), 0), (t.as_str(), 0));
        }

        for j in 0..6 {
            let joint = format!("Joint{j}");
            b.subsystem(&joint, SystemKind::Plain, |s| {
                // own 14 + nested pid 10 = 24 actors, 1 nested subsystem
                s.inport("cmd", DataType::I32);
                s.subsystem("Pid", SystemKind::Plain, |p| parts::pid(p, DataType::I32));
                s.actor("Motor", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
                s.actor("Inertia", ActorKind::UnitDelay { init: Scalar::I32(0) });
                s.actor("Friction", ActorKind::Gain { gain: Scalar::I32(1) });
                s.actor("NetTorque", ActorKind::Sum { signs: "+-".into() });
                s.actor("Pos", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
                s.actor("Stall", ActorKind::CompareToConstant {
                    op: RelOp::Gt,
                    constant: Scalar::I32(9000),
                });
                s.actor("Mag", ActorKind::Abs);
                s.actor("SafePos", ActorKind::Saturation { lo: -20_000.0, hi: 20_000.0 });
                s.actor("Brake", ActorKind::Switch { criteria: SwitchCriteria::NotEqualZero });
                s.actor("ZeroT", ActorKind::Constant { value: Value::scalar(Scalar::I32(0)) });
                s.outport("pos", DataType::I32);
                s.outport("stall", DataType::Bool);
                s.connect(("cmd", 0), ("Pid", 0));
                s.connect(("SafePos", 0), ("Pid", 1));
                s.connect(("Pid", 0), ("NetTorque", 0));
                s.wire_to("Inertia", "Friction", 0);
                s.connect(("Friction", 0), ("NetTorque", 1));
                s.wire("NetTorque", "Motor");
                s.wire_to("Motor", "Inertia", 0);
                s.wire("Motor", "Pos");
                s.wire("Pos", "SafePos");
                s.wire("Motor", "Mag");
                s.wire("Mag", "Stall");
                s.connect(("ZeroT", 0), ("Brake", 0));
                s.connect(("Stall", 0), ("Brake", 1));
                s.connect(("SafePos", 0), ("Brake", 2));
                s.connect(("Brake", 0), ("pos", 0));
                s.wire("Stall", "stall");
                // Gear train and backlash model (10 actors).
                s.actor("Gear", ActorKind::Gain { gain: Scalar::I32(5) });
                s.actor("Backlash", ActorKind::DeadZone { start: -1.0, end: 1.0 });
                s.actor("Load", ActorKind::Bias { bias: Scalar::I32(3) });
                s.actor("Wear", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
                s.actor("WearMag", ActorKind::Abs);
                s.actor("WornOut", ActorKind::CompareToConstant {
                    op: RelOp::Gt,
                    constant: Scalar::I32(100_000),
                });
                s.actor("GearZ", ActorKind::UnitDelay { init: Scalar::I32(0) });
                s.actor("GearVel", ActorKind::Sum { signs: "+-".into() });
                s.wire("Brake", "Gear");
                s.wire("Gear", "Backlash");
                s.wire("Backlash", "Load");
                s.wire("Load", "Wear");
                s.wire("Wear", "WearMag");
                s.wire("WearMag", "WornOut");
                s.wire_to("Gear", "GearZ", 0);
                s.connect(("Gear", 0), ("GearVel", 0));
                s.connect(("GearZ", 0), ("GearVel", 1));
            });
            b.connect((format!("Traj{}", j % 3).as_str(), 0), (joint.as_str(), 0));

            let drv = format!("Drive{j}");
            b.subsystem(&drv, SystemKind::Plain, |s| parts::power9(s, DataType::I32));
            b.connect((joint.as_str(), 0), (drv.as_str(), 0));
            b.connect((format!("IkOff{j}").as_str(), 0), (drv.as_str(), 1));

            let enc = format!("Encoder{j}");
            b.subsystem(&enc, SystemKind::Plain, |s| parts::filter8(s, DataType::I32));
            b.connect((joint.as_str(), 0), (enc.as_str(), 0));
        }

        let gates = phase_gates(&mut b, 30, |m| 3i128 << m.min(40));
        for (m, gate) in gates.iter().enumerate() {
            let mon = format!("Watch{m}");
            let threshold = 100_000i128 * (1 + m as i128);
            if m == 0 {
                b.subsystem(&mon, SystemKind::Plain, move |s| {
                    parts::monitor10(s, DataType::I32, threshold)
                });
            } else {
                // Armed one mission phase at a time.
                b.subsystem(&mon, SystemKind::Enabled, move |s| {
                    parts::monitor10(s, DataType::I32, threshold)
                });
            }
            let src = match m % 3 {
                0 => format!("Joint{}", m % 6),
                1 => format!("Drive{}", m % 6),
                _ => format!("Encoder{}", m % 6),
            };
            b.connect((src.as_str(), 0), (mon.as_str(), 0));
            if m > 0 {
                b.connect((gate.as_str(), 0), (mon.as_str(), 1));
            }
        }

        b.actor("AnyStall", ActorKind::Logical { op: LogicOp::Or, inputs: 6 });
        for j in 0..6 {
            b.connect((format!("Joint{j}").as_str(), 1), ("AnyStall", j));
        }
        b.actor("AnyWatch", ActorKind::Logical { op: LogicOp::Or, inputs: 30 });
        for m in 0..30 {
            b.connect((format!("Watch{m}").as_str(), 0), ("AnyWatch", m));
        }
        b.actor("EStop", ActorKind::Logical { op: LogicOp::And, inputs: 2 });
        b.connect(("AnyWatch", 0), ("EStop", 0));
        b.connect(("Run", 0), ("EStop", 1));
        b.actor("TotalPower", ActorKind::Sum { signs: "++++++".into() });
        for j in 0..6 {
            b.connect((format!("Drive{j}").as_str(), 0), ("TotalPower", j));
        }

        b.outport("Pos0", DataType::I32);
        b.outport("Stalled", DataType::Bool);
        b.outport("Estop", DataType::Bool);
        b.outport("PowerTotal", DataType::I32);
        b.connect(("Joint0", 0), ("Pos0", 0));
        b.wire("AnyStall", "Stalled");
        b.wire("EStop", "Estop");
        b.wire("TotalPower", "PowerTotal");

        add_testpoints(
            &mut b,
            &[("Joint0", 0), ("Joint1", 0), ("Drive0", 0), ("Encoder0", 0), ("Traj0", 0)],
            pad,
        );
        b.build().expect("RAC")
    })
}

// ---------------------------------------------------------------------------
// SPV — solar PV output control (131 actors, 16 subsystems, compute-heavy)
// ---------------------------------------------------------------------------

/// Solar PV panel output control: 8 panels, 4 MPPT trackers, 4 inverters.
pub fn spv() -> Model {
    sized(131, |pad| {
        let mut b = ModelBuilder::new("SPV");
        b.inport("Irradiance", DataType::I32);
        b.inport("Temp", DataType::I32);
        b.inport("Load", DataType::I32);

        for k in 0..8 {
            let p = format!("Panel{k}");
            b.subsystem(&p, SystemKind::Plain, |s| {
                // 9 actors: 2 in + 5 body + 2 out
                s.inport("irr", DataType::I32);
                s.inport("temp", DataType::I32);
                s.actor("Iv", ActorKind::Product { ops: "**".into() });
                s.actor("Derate", ActorKind::Sum { signs: "+-".into() });
                s.actor("Eff", ActorKind::Gain { gain: Scalar::I32(4) });
                s.actor("Clip", ActorKind::Saturation { lo: 0.0, hi: 2_000_000.0 });
                s.actor("Energy", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
                s.outport("pwr", DataType::I32);
                s.outport("energy", DataType::I32);
                s.connect(("irr", 0), ("Iv", 0));
                s.connect(("irr", 0), ("Iv", 1));
                s.connect(("Iv", 0), ("Derate", 0));
                s.connect(("temp", 0), ("Derate", 1));
                s.wire("Derate", "Eff");
                s.wire("Eff", "Clip");
                s.wire("Clip", "Energy");
                s.connect(("Clip", 0), ("pwr", 0));
                s.connect(("Energy", 0), ("energy", 0));
            });
            b.connect(("Irradiance", 0), (p.as_str(), 0));
            b.connect(("Temp", 0), (p.as_str(), 1));
        }
        for k in 0..4 {
            let m = format!("Mppt{k}");
            b.subsystem(&m, SystemKind::Plain, |s| parts::compute7(s, DataType::I32));
            b.connect((format!("Panel{}", k * 2).as_str(), 0), (m.as_str(), 0));
        }
        for k in 0..4 {
            let inv = format!("Inverter{k}");
            b.subsystem(&inv, SystemKind::Plain, |s| parts::filter5(s, DataType::I32));
            b.connect((format!("Mppt{k}").as_str(), 0), (inv.as_str(), 0));
        }

        b.actor("Total", ActorKind::Sum { signs: "++++".into() });
        for k in 0..4 {
            b.connect((format!("Inverter{k}").as_str(), 0), ("Total", k));
        }
        b.actor("Surplus", ActorKind::Sum { signs: "+-".into() });
        b.connect(("Total", 0), ("Surplus", 0));
        b.connect(("Load", 0), ("Surplus", 1));

        b.outport("GridPower", DataType::I32);
        b.outport("Surp", DataType::I32);
        b.wire("Total", "GridPower");
        b.wire("Surplus", "Surp");

        add_testpoints(&mut b, &[("Panel0", 0), ("Mppt0", 0), ("Inverter0", 0)], pad);
        b.build().expect("SPV")
    })
}

// ---------------------------------------------------------------------------
// TCP — three-way handshake protocol (330 actors, 42 subsystems)
// ---------------------------------------------------------------------------

/// TCP three-way handshake: 12 connection slots, each with a nested state
/// machine and retransmission timer; 6 checksum pipelines.
pub fn tcp() -> Model {
    sized(330, |pad| {
        let mut b = ModelBuilder::new("TCP");
        b.inport("Syn", DataType::Bool);
        b.inport("Ack", DataType::Bool);
        b.inport("Data", DataType::U32);
        b.inport("Reset", DataType::Bool);

        for k in 0..12 {
            let conn = format!("Conn{k}");
            b.subsystem(&conn, SystemKind::Plain, |s| {
                // own 10 + fsm 8 + timer 5 = 23 actors, 2 nested subsystems
                s.inport("syn", DataType::Bool);
                s.inport("ack", DataType::Bool);
                s.actor("Handshake", ActorKind::Logical { op: LogicOp::And, inputs: 2 });
                s.actor("Phase", ActorKind::UnitDelay { init: Scalar::U8(0) });
                s.actor("Established", ActorKind::CompareToConstant {
                    op: RelOp::Ge,
                    constant: Scalar::U8(2),
                });
                s.actor("Adv", ActorKind::Switch { criteria: SwitchCriteria::NotEqualZero });
                s.actor("Zero", ActorKind::Constant { value: Value::scalar(Scalar::U8(0)) });
                s.subsystem("Fsm", SystemKind::Enabled, |f| {
                    // 8 actors
                    f.inport("phase", DataType::U8);
                    f.actor("Next", ActorKind::Bias { bias: Scalar::U8(1) });
                    f.actor("Wrap", ActorKind::Saturation { lo: 0.0, hi: 3.0 });
                    f.constant("SynSt", Scalar::U8(1));
                    f.actor("IsNew", ActorKind::CompareToConstant {
                        op: RelOp::Eq,
                        constant: Scalar::U8(0),
                    });
                    f.actor("Pick", ActorKind::Switch { criteria: SwitchCriteria::NotEqualZero });
                    f.outport("next", DataType::U8);
                    f.wire("phase", "Next");
                    f.wire("Next", "Wrap");
                    f.wire("phase", "IsNew");
                    f.connect(("SynSt", 0), ("Pick", 0));
                    f.connect(("IsNew", 0), ("Pick", 1));
                    f.connect(("Wrap", 0), ("Pick", 2));
                    f.wire("Pick", "next");
                });
                s.subsystem("Timer", SystemKind::Enabled, |t| {
                    // 5 actors
                    t.actor("Ticks", ActorKind::Counter { limit: 63 });
                    t.actor("Expired", ActorKind::CompareToConstant {
                        op: RelOp::Ge,
                        constant: Scalar::I32(32),
                    });
                    t.outport("timeout", DataType::Bool);
                    t.outport("ticks", DataType::I32);
                    t.wire("Ticks", "Expired");
                    t.wire("Expired", "timeout");
                    t.connect(("Ticks", 0), ("ticks", 0));
                });
                s.outport("established", DataType::Bool);
                s.outport("phase", DataType::U8);

                s.connect(("syn", 0), ("Handshake", 0));
                s.connect(("ack", 0), ("Handshake", 1));
                s.wire_to("Phase", "Fsm", 0);
                s.connect(("Handshake", 0), ("Fsm", 1)); // control
                s.connect(("syn", 0), ("Timer", 0)); // control
                s.connect(("Fsm", 0), ("Adv", 0));
                s.connect(("Handshake", 0), ("Adv", 1));
                s.connect(("Zero", 0), ("Adv", 2));
                s.wire_to("Adv", "Phase", 0);
                s.wire("Phase", "Established");
                s.wire("Established", "established");
                s.connect(("Phase", 0), ("phase", 0));
            });
            b.connect(("Syn", 0), (conn.as_str(), 0));
            b.connect(("Ack", 0), (conn.as_str(), 1));
        }

        for k in 0..6 {
            let c = format!("Checksum{k}");
            b.subsystem(&c, SystemKind::Plain, |s| parts::crc6(s, DataType::U32));
            b.connect(("Data", 0), (c.as_str(), 0));
        }

        b.actor("AnyConn", ActorKind::Logical { op: LogicOp::Or, inputs: 12 });
        for k in 0..12 {
            b.connect((format!("Conn{k}").as_str(), 0), ("AnyConn", k));
        }
        b.actor("NotReset", ActorKind::Logical { op: LogicOp::Not, inputs: 1 });
        b.wire("Reset", "NotReset");
        b.actor("Live", ActorKind::Logical { op: LogicOp::And, inputs: 2 });
        b.connect(("AnyConn", 0), ("Live", 0));
        b.connect(("NotReset", 0), ("Live", 1));

        b.outport("Established", DataType::Bool);
        b.outport("Crc0", DataType::U32);
        b.outport("Phase0", DataType::U8);
        b.wire("Live", "Established");
        b.connect(("Checksum0", 0), ("Crc0", 0));
        b.connect(("Conn0", 1), ("Phase0", 0));

        add_testpoints(&mut b, &[("Conn0", 1), ("Conn1", 1), ("Checksum0", 0)], pad);
        b.build().expect("TCP")
    })
}

// ---------------------------------------------------------------------------
// TWC — train wheel speed controller (214 actors, 13 subsystems)
// ---------------------------------------------------------------------------

/// Train wheel speed controller: 4 large wheel-control subsystems with
/// slip protection, 4 slip monitors, 4 brake stages, 1 coordinator.
pub fn twc() -> Model {
    sized(214, |pad| {
        let mut b = ModelBuilder::new("TWC");
        b.inport("SpeedCmd", DataType::I32);
        b.inport("RailCond", DataType::I32);
        b.inport("Brake", DataType::Bool);
        b.inport("Mass", DataType::I32);

        for k in 0..4 {
            let wheel = format!("Wheel{k}");
            b.subsystem(&wheel, SystemKind::Plain, |s| {
                // 26 actors: 2 in + 22 body + 2 out
                s.inport("cmd", DataType::I32);
                s.inport("rail", DataType::I32);
                s.actor("Err", ActorKind::Sum { signs: "+-".into() });
                s.actor("Kp", ActorKind::Gain { gain: Scalar::I32(4) });
                s.actor("Ki", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
                s.actor("Kd", ActorKind::DiscreteDerivative);
                s.actor("KdGain", ActorKind::Gain { gain: Scalar::I32(2) });
                s.actor("Mix", ActorKind::Sum { signs: "+++".into() });
                s.actor("Torque", ActorKind::Saturation { lo: -8_000.0, hi: 8_000.0 });
                s.actor("Slew", ActorKind::RateLimiter { rising: 200.0, falling: -200.0 });
                s.actor("WheelDyn", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
                s.actor("Fb", ActorKind::UnitDelay { init: Scalar::I32(0) });
                s.actor("Grip", ActorKind::Sum { signs: "+-".into() });
                s.actor("GripMag", ActorKind::Abs);
                s.actor("Slipping", ActorKind::CompareToConstant {
                    op: RelOp::Gt,
                    constant: Scalar::I32(40),
                });
                s.actor("Zero", ActorKind::Constant { value: Value::scalar(Scalar::I32(0)) });
                s.actor("CutTorque", ActorKind::Switch { criteria: SwitchCriteria::NotEqualZero });
                s.actor("Dead", ActorKind::DeadZone { start: -3.0, end: 3.0 });
                s.actor("Quant", ActorKind::Quantizer { interval: 4.0 });
                s.actor("SlipLatch", ActorKind::Logical { op: LogicOp::Or, inputs: 2 });
                s.actor("LatchZ", ActorKind::UnitDelay { init: Scalar::Bool(false) });
                s.actor("SpeedMag", ActorKind::Abs);
                s.actor("Over", ActorKind::CompareToConstant {
                    op: RelOp::Gt,
                    constant: Scalar::I32(3000),
                });
                s.outport("speed", DataType::I32);
                s.outport("slip", DataType::Bool);
                s.connect(("cmd", 0), ("Err", 0));
                s.connect(("Fb", 0), ("Err", 1));
                s.wire("Err", "Kp");
                s.wire("Err", "Ki");
                s.wire("Err", "Kd");
                s.wire("Kd", "KdGain");
                s.connect(("Kp", 0), ("Mix", 0));
                s.connect(("Ki", 0), ("Mix", 1));
                s.connect(("KdGain", 0), ("Mix", 2));
                s.wire("Mix", "Torque");
                s.wire("Torque", "Slew");
                s.wire("Slew", "Dead");
                s.wire("Dead", "Quant");
                s.connect(("Quant", 0), ("CutTorque", 2));
                s.connect(("Zero", 0), ("CutTorque", 0));
                s.connect(("SlipLatch", 0), ("CutTorque", 1));
                s.wire("CutTorque", "WheelDyn");
                s.wire_to("WheelDyn", "Fb", 0);
                s.connect(("WheelDyn", 0), ("Grip", 0));
                s.connect(("rail", 0), ("Grip", 1));
                s.wire("Grip", "GripMag");
                s.wire("GripMag", "Slipping");
                s.connect(("Slipping", 0), ("SlipLatch", 0));
                s.connect(("LatchZ", 0), ("SlipLatch", 1));
                s.wire_to("SlipLatch", "LatchZ", 0);
                s.wire("WheelDyn", "SpeedMag");
                s.wire("SpeedMag", "Over");
                s.connect(("WheelDyn", 0), ("speed", 0));
                s.wire("SlipLatch", "slip");
                // Over feeds the latch path through telemetry only.
                s.actor("OverTap", ActorKind::Scope);
                s.wire("Over", "OverTap");
            });
            b.connect(("SpeedCmd", 0), (wheel.as_str(), 0));
            b.connect(("RailCond", 0), (wheel.as_str(), 1));

            let mon = format!("SlipMon{k}");
            let threshold = 5_000i128 << (7 * k);
            b.subsystem(&mon, SystemKind::Plain, move |s| {
                parts::monitor10(s, DataType::I32, threshold)
            });
            b.connect((wheel.as_str(), 0), (mon.as_str(), 0));

            let brk = format!("BrakeStage{k}");
            b.subsystem(&brk, SystemKind::Plain, |s| parts::power9(s, DataType::I32));
            b.connect((wheel.as_str(), 0), (brk.as_str(), 0));
            b.connect(("Mass", 0), (brk.as_str(), 1));
        }

        b.subsystem("Coordinator", SystemKind::Plain, |s| {
            // 14 actors: 5 in + 7 body + 2 out
            for k in 0..4 {
                s.inport(&format!("w{k}"), DataType::I32);
            }
            s.inport("brake", DataType::Bool);
            s.actor("Slowest", ActorKind::MinMax { op: MinMaxOp::Min, inputs: 4 });
            s.actor("Fastest", ActorKind::MinMax { op: MinMaxOp::Max, inputs: 4 });
            s.actor("Spread", ActorKind::Sum { signs: "+-".into() });
            s.actor("Uneven", ActorKind::CompareToConstant {
                op: RelOp::Gt,
                constant: Scalar::I32(100),
            });
            s.actor("Zero", ActorKind::Constant { value: Value::scalar(Scalar::I32(0)) });
            s.actor("Ref", ActorKind::Switch { criteria: SwitchCriteria::NotEqualZero });
            s.actor("Alarm", ActorKind::Logical { op: LogicOp::Or, inputs: 2 });
            s.outport("ref", DataType::I32);
            s.outport("alarm", DataType::Bool);
            for k in 0..4 {
                s.connect((format!("w{k}").as_str(), 0), ("Slowest", k));
                s.connect((format!("w{k}").as_str(), 0), ("Fastest", k));
            }
            s.connect(("Fastest", 0), ("Spread", 0));
            s.connect(("Slowest", 0), ("Spread", 1));
            s.wire("Spread", "Uneven");
            s.connect(("Zero", 0), ("Ref", 0));
            s.connect(("brake", 0), ("Ref", 1));
            s.connect(("Slowest", 0), ("Ref", 2));
            s.connect(("Uneven", 0), ("Alarm", 0));
            s.connect(("brake", 0), ("Alarm", 1));
            s.wire("Ref", "ref");
            s.wire("Alarm", "alarm");
        });
        for k in 0..4 {
            b.connect((format!("Wheel{k}").as_str(), 0), ("Coordinator", k));
        }
        b.connect(("Brake", 0), ("Coordinator", 4));

        b.actor("AnySlip", ActorKind::Logical { op: LogicOp::Or, inputs: 4 });
        for k in 0..4 {
            b.connect((format!("Wheel{k}").as_str(), 1), ("AnySlip", k));
        }
        b.outport("RefSpeed", DataType::I32);
        b.outport("Slip", DataType::Bool);
        b.outport("CoordAlarm", DataType::Bool);
        b.connect(("Coordinator", 0), ("RefSpeed", 0));
        b.wire("AnySlip", "Slip");
        b.connect(("Coordinator", 1), ("CoordAlarm", 0));

        add_testpoints(&mut b, &[("Wheel0", 0), ("Wheel1", 0), ("BrakeStage0", 0)], pad);
        b.build().expect("TWC")
    })
}

// ---------------------------------------------------------------------------
// UTPC — underwater thruster power control (214 actors, 21 subsystems)
// ---------------------------------------------------------------------------

/// Underwater thruster power control: 8 thrusters with current monitors,
/// 4 depth controllers, a power-budget aggregator.
pub fn utpc() -> Model {
    sized(214, |pad| {
        let mut b = ModelBuilder::new("UTPC");
        b.inport("DepthCmd", DataType::I32);
        b.inport("Depth", DataType::I32);
        b.inport("Battery", DataType::I32);
        b.inport("Dive", DataType::Bool);

        let gates = phase_gates(&mut b, 8, |k| 20 << (3 * k));
        for k in 0..4 {
            let ctl = format!("DepthCtl{k}");
            b.subsystem(&ctl, SystemKind::Plain, |s| parts::pid(s, DataType::I32));
            b.connect(("DepthCmd", 0), (ctl.as_str(), 0));
            b.connect(("Depth", 0), (ctl.as_str(), 1));
        }
        for (k, gate) in gates.iter().enumerate() {
            let en = format!("ThrustEn{k}");
            b.actor(&en, ActorKind::Logical { op: LogicOp::And, inputs: 2 });
            b.connect(("Dive", 0), (en.as_str(), 0));
            b.connect(("Dive", 0), (en.as_str(), 1));

            let th = format!("Thruster{k}");
            b.subsystem(&th, SystemKind::Enabled, |s| parts::power9(s, DataType::I32));
            b.connect((format!("DepthCtl{}", k % 4).as_str(), 0), (th.as_str(), 0));
            b.connect(("Battery", 0), (th.as_str(), 1));
            b.connect((en.as_str(), 0), (th.as_str(), 2)); // control

            let mon = format!("CurrentMon{k}");
            let hi = 300i128 << (2 * k);
            if k == 0 {
                b.subsystem(&mon, SystemKind::Plain, move |s| {
                    parts::monitor6(s, DataType::I32, hi, -hi)
                });
            } else {
                b.subsystem(&mon, SystemKind::Enabled, move |s| {
                    parts::monitor6(s, DataType::I32, hi, -hi)
                });
            }
            b.connect((th.as_str(), 0), (mon.as_str(), 0));
            if k > 0 {
                b.connect((gate.as_str(), 0), (mon.as_str(), 1));
            }
        }

        b.subsystem("Budget", SystemKind::Plain, |s| {
            // 10 actors: 8 in + 1 + 1 out
            for k in 0..8 {
                s.inport(&format!("p{k}"), DataType::I32);
            }
            s.actor("Total", ActorKind::Sum { signs: "++++++++".into() });
            s.outport("total", DataType::I32);
            for k in 0..8 {
                s.connect((format!("p{k}").as_str(), 0), ("Total", k));
            }
            s.wire("Total", "total");
        });
        for k in 0..8 {
            b.connect((format!("Thruster{k}").as_str(), 0), ("Budget", k));
        }

        b.actor("OverBudget", ActorKind::Relational { op: RelOp::Gt });
        b.connect(("Budget", 0), ("OverBudget", 0));
        b.connect(("Battery", 0), ("OverBudget", 1));
        b.actor("AnyOver", ActorKind::Logical { op: LogicOp::Or, inputs: 8 });
        for k in 0..8 {
            b.connect((format!("CurrentMon{k}").as_str(), 0), ("AnyOver", k));
        }

        b.outport("PowerTotal", DataType::I32);
        b.outport("OverCurrent", DataType::Bool);
        b.outport("BudgetAlarm", DataType::Bool);
        b.connect(("Budget", 0), ("PowerTotal", 0));
        b.wire("AnyOver", "OverCurrent");
        b.wire("OverBudget", "BudgetAlarm");

        add_testpoints(&mut b, &[("Thruster0", 0), ("DepthCtl0", 0), ("Budget", 0)], pad);
        b.build().expect("UTPC")
    })
}
