//! Reusable subsystem building blocks for the benchmark models.
//!
//! Each part builds one subsystem body with a **documented, exact actor
//! count** so the benchmark generators can hit the paper's Table 1 sizes.
//! Parts come in two flavours matching the paper's workload analysis:
//! *computational* bodies (arithmetic chains that compilers optimize well)
//! and *control* bodies (switches, comparisons and logic).

use accmos_ir::{
    Actor, ActorKind, DataType, LogicOp, MathOp, MinMaxOp, RelOp, Scalar, SwitchCriteria,
    SystemBuilder,
};

/// PID controller: setpoint/feedback in, saturated command out.
/// **10 actors** (2 in, 7 body, 1 out).
pub fn pid(s: &mut SystemBuilder, dt: DataType) {
    s.inport("sp", dt);
    s.inport("fb", dt);
    s.actor("Err", ActorKind::Sum { signs: "+-".into() });
    s.actor("P", ActorKind::Gain { gain: Scalar::from_i128(dt, 3) });
    s.actor("I", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::zero(dt) });
    s.actor("D", ActorKind::DiscreteDerivative);
    s.actor("Kd", ActorKind::Gain { gain: Scalar::from_i128(dt, 2) });
    s.actor("Mix", ActorKind::Sum { signs: "+++".into() });
    s.actor("Limit", ActorKind::Saturation { lo: -10_000.0, hi: 10_000.0 });
    s.outport("u", dt);
    s.connect(("sp", 0), ("Err", 0));
    s.connect(("fb", 0), ("Err", 1));
    s.wire("Err", "P");
    s.wire("Err", "I");
    s.wire("Err", "D");
    s.wire("D", "Kd");
    s.connect(("P", 0), ("Mix", 0));
    s.connect(("I", 0), ("Mix", 1));
    s.connect(("Kd", 0), ("Mix", 2));
    s.wire("Mix", "Limit");
    s.wire("Limit", "u");
}

/// Power calculation: voltage/current in, limited power out.
/// **6 actors** (2 in, 3 body, 1 out).
pub fn power7(s: &mut SystemBuilder, dt: DataType) {
    s.inport("v", dt);
    s.inport("i", dt);
    s.actor("P", ActorKind::Product { ops: "**".into() });
    s.actor("Eff", ActorKind::Gain { gain: Scalar::from_i128(dt, 9) });
    s.actor("Limit", ActorKind::Saturation { lo: 0.0, hi: 1_000_000.0 });
    s.outport("p", dt);
    s.connect(("v", 0), ("P", 0));
    s.connect(("i", 0), ("P", 1));
    s.wire("P", "Eff");
    s.wire("Eff", "Limit");
    s.wire("Limit", "p");
}

/// Power stage with dead zone and slew limit.
/// **8 actors** (2 in, 5 body, 1 out).
pub fn power9(s: &mut SystemBuilder, dt: DataType) {
    s.inport("v", dt);
    s.inport("i", dt);
    s.actor("P", ActorKind::Product { ops: "**".into() });
    s.actor("Eff", ActorKind::Gain { gain: Scalar::from_i128(dt, 7) });
    s.actor("Dead", ActorKind::DeadZone { start: -2.0, end: 2.0 });
    s.actor("Slew", ActorKind::RateLimiter { rising: 500.0, falling: -500.0 });
    s.actor("Limit", ActorKind::Saturation { lo: -100_000.0, hi: 100_000.0 });
    s.outport("p", dt);
    s.connect(("v", 0), ("P", 0));
    s.connect(("i", 0), ("P", 1));
    s.wire("P", "Eff");
    s.wire("Eff", "Dead");
    s.wire("Dead", "Slew");
    s.wire("Slew", "Limit");
    s.wire("Limit", "p");
}

/// Window comparator with edge detection; `hi`/`lo` are the trip levels
/// (staggering them across instances spreads decision-coverage depth).
/// **6 actors** (1 in, 4, 1 out).
pub fn monitor6(s: &mut SystemBuilder, dt: DataType, hi: i128, lo: i128) {
    s.inport("x", dt);
    s.actor("Hi", ActorKind::CompareToConstant { op: RelOp::Gt, constant: Scalar::from_i128(dt, hi) });
    s.actor("Lo", ActorKind::CompareToConstant { op: RelOp::Lt, constant: Scalar::from_i128(dt, lo) });
    s.actor("Out", ActorKind::Logical { op: LogicOp::Or, inputs: 2 });
    s.actor("Edge", ActorKind::EdgeDetector { rising: true, falling: false });
    s.outport("alarm", DataType::Bool);
    s.wire("x", "Hi");
    s.wire("x", "Lo");
    s.connect(("Hi", 0), ("Out", 0));
    s.connect(("Lo", 0), ("Out", 1));
    s.wire("Out", "Edge"); // edge detector observes the window trip
    s.wire("Out", "alarm");
}

/// Accumulating watchdog: integrates `|x|` toward a trip `threshold` and
/// latches an alarm when it is reached, so the alarm (and everything the
/// alarm gates downstream) only fires after a long simulated horizon —
/// the slowly-ramping coverage the paper's Table 3 measures.
/// **10 actors** (1 in, 7 body, 2 out).
pub fn monitor10(s: &mut SystemBuilder, dt: DataType, threshold: i128) {
    s.inport("x", dt);
    s.actor("Abs", ActorKind::Abs);
    s.actor(
        "Acc",
        ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I64(0) },
    );
    s.actor("Hi", ActorKind::CompareToConstant {
        op: RelOp::Ge,
        constant: Scalar::from_i128(DataType::I64, threshold),
    });
    s.actor("Prev", ActorKind::UnitDelay { init: Scalar::Bool(false) });
    s.actor("Latch", ActorKind::Logical { op: LogicOp::Or, inputs: 2 });
    s.actor("Edge", ActorKind::EdgeDetector { rising: true, falling: true });
    s.actor("Trend", ActorKind::DiscreteDerivative);
    s.outport("alarm", DataType::Bool);
    s.outport("trend", dt);
    s.wire("x", "Abs");
    s.wire("Abs", "Acc");
    s.wire("Acc", "Hi");
    s.connect(("Hi", 0), ("Latch", 0));
    s.connect(("Prev", 0), ("Latch", 1));
    s.wire_to("Latch", "Prev", 0);
    s.wire("Latch", "Edge"); // edge observes the latch transition
    s.wire("Latch", "alarm");
    s.wire("x", "Trend");
    s.wire("Trend", "trend");
}

/// First-order IIR smoothing filter. **5 actors** (1 in, 3, 1 out).
pub fn filter5(s: &mut SystemBuilder, dt: DataType) {
    s.inport("u", dt);
    s.actor("Z", ActorKind::UnitDelay { init: Scalar::zero(dt) });
    s.actor("Mix", ActorKind::Sum { signs: "++".into() });
    s.actor("Half", ActorKind::Gain { gain: Scalar::from_i128(dt, 1) });
    s.outport("y", dt);
    s.connect(("u", 0), ("Mix", 0));
    s.connect(("Z", 0), ("Mix", 1));
    s.wire("Mix", "Half");
    s.wire_to("Half", "Z", 0);
    s.wire("Half", "y");
}

/// Smoothing filter with quantization and type conversion.
/// **8 actors** (1 in, 6, 1 out).
pub fn filter8(s: &mut SystemBuilder, dt: DataType) {
    s.inport("u", dt);
    s.actor("Z", ActorKind::UnitDelay { init: Scalar::zero(dt) });
    s.actor("Mix", ActorKind::Sum { signs: "++".into() });
    s.actor("Bias", ActorKind::Bias { bias: Scalar::from_i128(dt, 1) });
    s.actor("Quant", ActorKind::Quantizer { interval: 2.0 });
    s.actor("Cvt", ActorKind::DataTypeConversion { to: dt });
    s.actor("Clip", ActorKind::Saturation { lo: -30_000.0, hi: 30_000.0 });
    s.outport("y", dt);
    s.connect(("u", 0), ("Mix", 0));
    s.connect(("Z", 0), ("Mix", 1));
    s.wire("Mix", "Bias");
    s.wire("Bias", "Quant");
    s.wire("Quant", "Cvt");
    s.wire("Cvt", "Clip");
    s.wire_to("Clip", "Z", 0);
    s.wire("Clip", "y");
}

/// Computation-heavy arithmetic chain. **7 actors** (1 in, 5, 1 out).
pub fn compute7(s: &mut SystemBuilder, dt: DataType) {
    s.inport("u", dt);
    s.actor("Sq", ActorKind::Math { op: MathOp::Square });
    s.actor("K", ActorKind::Gain { gain: Scalar::from_i128(dt, 3) });
    s.actor("Off", ActorKind::Bias { bias: Scalar::from_i128(dt, 7) });
    s.actor("Mag", ActorKind::Abs);
    s.actor("Acc", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::zero(dt) });
    s.outport("y", dt);
    s.wire("u", "Sq");
    s.wire("Sq", "K");
    s.wire("K", "Off");
    s.wire("Off", "Mag");
    s.wire("Mag", "Acc");
    s.wire("Acc", "y");
}

/// Richer task body: accumulates work toward an exhaustion `budget`, then
/// switches to the idle fallback — the switch branch flips only deep into
/// a long run. **10 actors** (1 in, 8, 1 out).
pub fn task10(s: &mut SystemBuilder, dt: DataType, budget: i128) {
    s.inport("load", dt);
    s.actor("Slot", ActorKind::Counter { limit: 15 });
    s.actor("Work", ActorKind::Sum { signs: "++".into() });
    s.actor("Mag", ActorKind::Abs);
    s.actor(
        "Spent",
        ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I64(0) },
    );
    s.actor("Over", ActorKind::CompareToConstant {
        op: RelOp::Gt,
        constant: Scalar::from_i128(DataType::I64, budget),
    });
    s.actor("Idle", ActorKind::Constant { value: accmos_ir::Value::scalar(Scalar::zero(dt)) });
    s.actor("Pick", ActorKind::Switch { criteria: SwitchCriteria::NotEqualZero });
    s.outport("done", dt);
    s.connect(("load", 0), ("Work", 0));
    s.connect(("Slot", 0), ("Work", 1));
    s.wire("Work", "Mag");
    s.wire("Mag", "Spent");
    s.wire("Spent", "Over");
    s.connect(("Idle", 0), ("Pick", 0));
    s.connect(("Over", 0), ("Pick", 1));
    s.connect(("Work", 0), ("Pick", 2));
    s.wire("Pick", "done");
}

/// Checksum/CRC-ish bit mangling chain. **6 actors** (1 in, 4, 1 out).
pub fn crc6(s: &mut SystemBuilder, dt: DataType) {
    s.inport("data", dt);
    s.actor("Mix", ActorKind::Bitwise { op: accmos_ir::BitOp::Xor });
    s.actor("Shift", ActorKind::Shift { dir: accmos_ir::ShiftDir::Left, amount: 1 });
    s.actor("Z", ActorKind::UnitDelay { init: Scalar::zero(dt) });
    s.outport("crc", dt);
    // crc' = (data ^ z) << 1 ... delayed
    s.connect(("data", 0), ("Mix", 0));
    s.connect(("Z", 0), ("Mix", 1));
    s.wire("Mix", "Shift");
    s.wire_to("Shift", "Z", 0);
    s.wire("Shift", "crc");
    s.actor("Tap", ActorKind::Scope);
    s.wire("Mix", "Tap");
}

/// PWM channel: duty in, on/off out. **5 actors** (1 in, 3, 1 out).
pub fn pwm5(s: &mut SystemBuilder, dt: DataType) {
    s.inport("duty", dt);
    s.actor("Gamma", ActorKind::Gain { gain: Scalar::from_i128(dt, 1) });
    s.actor("Carrier", Actor::new(ActorKind::Counter { limit: 15 }).with_dtype(dt));
    s.actor("Cmp", ActorKind::Relational { op: RelOp::Lt });
    s.outport("led", DataType::Bool);
    s.wire("duty", "Gamma");
    s.connect(("Carrier", 0), ("Cmp", 0));
    s.connect(("Gamma", 0), ("Cmp", 1));
    s.wire("Cmp", "led");
}

/// Min/max aggregator over four inputs, with memory. **7 actors**
/// (4 in, 2, 1 out).
pub fn agg7(s: &mut SystemBuilder, dt: DataType, op: MinMaxOp) {
    for name in ["a", "b", "c", "d"] {
        s.inport(name, dt);
    }
    s.actor("Sel", ActorKind::MinMax { op, inputs: 4 });
    s.actor("Hold", ActorKind::UnitDelay { init: Scalar::zero(dt) });
    s.outport("y", dt);
    for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
        s.connect((*name, 0), ("Sel", i));
    }
    s.wire_to("Sel", "Hold", 0);
    s.wire("Sel", "y");
}

/// Sensor calibration (enabled inner stage). **4 actors** (1 in, 2, 1 out).
pub fn calib4(s: &mut SystemBuilder, dt: DataType) {
    s.inport("raw", dt);
    s.actor("Scale", ActorKind::Gain { gain: Scalar::from_i128(dt, 2) });
    s.actor("Off", ActorKind::Bias { bias: Scalar::from_i128(dt, -3) });
    s.outport("cal", dt);
    s.wire("raw", "Scale");
    s.wire("Scale", "Off");
    s.wire("Off", "cal");
}
