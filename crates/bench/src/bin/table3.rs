//! Reproduces **Table 3**: coverage achieved by AccMoS and SSE within
//! equal wall-clock budgets, on random test cases.
//!
//! The paper budgets 5 s / 15 s / 60 s; the defaults here are scaled to
//! 0.2 s / 0.6 s / 2.4 s (`--scale-ms N` sets the base budget in ms) —
//! the comparison shape (AccMoS covering more per unit time, both
//! saturating) is the target.

use accmos_bench::{arg_u64, coverage_row, coverage_within_budget, record_run};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base_ms = arg_u64(&args, "--scale-ms", 200);
    let seed = arg_u64(&args, "--seed", 2024);
    let budgets = [base_ms, base_ms * 3, base_ms * 12];

    println!("Table 3: Coverage of AccMoS and SSE (budgets {budgets:?} ms)");
    println!(
        "{:<7} {:>7} | {:>7} {:>7} | {:>7} {:>7} | {:>7} {:>7} | {:>7} {:>7}",
        "Model", "ms", "Act A", "Act S", "Cond A", "Cond S", "Dec A", "Dec S", "MCDC A", "MCDC S"
    );
    for (name, _, _) in accmos_models::TABLE1 {
        let model = accmos_models::by_name(name);
        for ms in budgets {
            let (acc, sse) =
                coverage_within_budget(&model, Duration::from_millis(ms), seed);
            record_run("table3", name, &acc.engine, acc.steps, acc.wall);
            record_run("table3", name, &sse.engine, sse.steps, sse.wall);
            let a = coverage_row(&acc);
            let s = coverage_row(&sse);
            println!(
                "{:<7} {:>7} | {:>6.0}% {:>6.0}% | {:>6.0}% {:>6.0}% | {:>6.0}% {:>6.0}% | {:>6.0}% {:>6.0}%",
                name, ms, a[0], s[0], a[1], s[1], a[2], s[2], a[3], s[3]
            );
        }
    }
    println!("(A = AccMoS, S = SSE; paper Table 3 uses 5/15/60 s budgets)");
}
