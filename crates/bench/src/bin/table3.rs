//! Reproduces **Table 3**: coverage achieved by AccMoS and SSE within
//! equal wall-clock budgets, on random test cases.
//!
//! The paper budgets 5 s / 15 s / 60 s; the defaults here are scaled to
//! 0.2 s / 0.6 s / 2.4 s (`--scale-ms N` sets the base budget in ms) —
//! the comparison shape (AccMoS covering more per unit time, both
//! saturating) is the target.
//!
//! `--lanes N` (N >= 2) appends the lane-parallel experiment: the same
//! N-vector workload run as N sequential scalar simulations and as one
//! lane-N simulation, with the measured wall-clock speedup per model.
//! Both configurations land in the run ledger under distinct lane keys
//! (`accmos` vs `accmos@N`), so `accmos trends` baselines them apart.

use accmos_bench::{
    arg_tracer, arg_u64, coverage_row, coverage_within_budget, fused_coverage, geo_mean,
    measure_lane_speedup, record_fused_coverage, record_lane_run, record_run, write_trace,
};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let base_ms = arg_u64(&args, "--scale-ms", 200);
    let seed = arg_u64(&args, "--seed", 2024);
    let lanes = arg_u64(&args, "--lanes", 0) as usize;
    let tracer = arg_tracer(&args);
    let budgets = [base_ms, base_ms * 3, base_ms * 12];

    println!("Table 3: Coverage of AccMoS and SSE (budgets {budgets:?} ms)");
    println!(
        "{:<7} {:>7} | {:>7} {:>7} | {:>7} {:>7} | {:>7} {:>7} | {:>7} {:>7}",
        "Model", "ms", "Act A", "Act S", "Cond A", "Cond S", "Dec A", "Dec S", "MCDC A", "MCDC S"
    );
    let mut accmos_steps_per_ms = Vec::new();
    for (name, _, _) in accmos_models::TABLE1 {
        let model = accmos_models::by_name(name);
        for ms in budgets {
            let start = tracer.as_ref().map(|t| t.now_us());
            let (acc, sse) =
                coverage_within_budget(&model, Duration::from_millis(ms), seed);
            if let (Some(tr), Some(start)) = (&tracer, start) {
                tr.span("bench", &format!("table3 {name} {ms}ms"), start, tr.now_us() - start, 1);
            }
            record_run("table3", name, &acc.engine, acc.steps, acc.wall);
            record_run("table3", name, &sse.engine, sse.steps, sse.wall);
            accmos_steps_per_ms.push((name, ms, acc.steps));
            let a = coverage_row(&acc);
            let s = coverage_row(&sse);
            println!(
                "{:<7} {:>7} | {:>6.0}% {:>6.0}% | {:>6.0}% {:>6.0}% | {:>6.0}% {:>6.0}% | {:>6.0}% {:>6.0}%",
                name, ms, a[0], s[0], a[1], s[1], a[2], s[2], a[3], s[3]
            );
        }
    }
    println!("(A = AccMoS, S = SSE; paper Table 3 uses 5/15/60 s budgets)");

    // Fused-segment coverage: how much of the lane-8 schedule joins
    // auto-vectorizable fused segments under the analyzer's semantic
    // lane-safety proof vs the syntactic branch-free baseline. Codegen
    // only — no compiles — so this column is cheap and deterministic.
    let fused_lanes = arg_u64(&args, "--fused-lanes", 8) as usize;
    println!();
    println!(
        "Fused-segment coverage at lanes={fused_lanes}: semantic (analyzer) vs syntactic baseline"
    );
    println!(
        "{:<7} {:>8} {:>10} {:>10} | {:>7} {:>7} {:>9}",
        "Model", "actors", "semantic", "syntactic", "folded", "elided", "spec-arms"
    );
    let mut semantic_wins = 0usize;
    for (name, _, _) in accmos_models::TABLE1 {
        let model = accmos_models::by_name(name);
        let fc = fused_coverage(&model, fused_lanes);
        record_fused_coverage("table3-fused", &fc);
        semantic_wins += usize::from(fc.semantic_fused > fc.syntactic_fused);
        println!(
            "{:<7} {:>8} {:>10} {:>10} | {:>7} {:>7} {:>9}",
            fc.model,
            fc.total_actors,
            fc.semantic_fused,
            fc.syntactic_fused,
            fc.folded,
            fc.elided,
            fc.specialized_arms
        );
    }
    println!(
        "semantic fusion strictly exceeds the syntactic baseline on {semantic_wins} of {} models",
        accmos_models::TABLE1.len()
    );

    if lanes >= 2 {
        // The lane experiment answers: given the base coverage budget,
        // is it cheaper to spend it on N independent vectors via N
        // scalar launches or via one lane-N launch? So split the steps
        // the base budget bought across the lanes — same total wall
        // budget, same per-vector work on both sides.
        println!();
        println!("Lane-parallel throughput: {lanes} scalar runs vs one lane-{lanes} run");
        println!(
            "{:<7} {:>10} | {:>11} {:>11} | {:>8}",
            "Model", "steps", "scalar", "lane", "speedup"
        );
        let mut speedups = Vec::new();
        for (name, _, _) in accmos_models::TABLE1 {
            let model = accmos_models::by_name(name);
            let steps = accmos_steps_per_ms
                .iter()
                .find(|(n, ms, _)| *n == name && *ms == base_ms)
                .map(|(_, _, s)| (*s / lanes as u64).max(1000))
                .unwrap_or(10_000);
            let start = tracer.as_ref().map(|t| t.now_us());
            let m = measure_lane_speedup(&model, steps, seed, lanes);
            if let (Some(tr), Some(start)) = (&tracer, start) {
                tr.span("bench", &format!("table3 lane-{lanes} {name}"), start, tr.now_us() - start, 1);
            }
            record_lane_run("table3-lane", name, "accmos", m.steps * lanes as u64, m.scalar_wall, 1);
            record_lane_run("table3-lane", name, "accmos", m.steps, m.lane_wall, lanes as u64);
            println!(
                "{:<7} {:>10} | {:>11.2?} {:>11.2?} | {:>7.2}x",
                name, m.steps, m.scalar_wall, m.lane_wall, m.speedup()
            );
            speedups.push(m.speedup());
        }
        println!(
            "geomean lane-{lanes} speedup: {:.2}x (same total work, per-lane digests verified)",
            geo_mean(speedups)
        );
    }
    write_trace(&args, &tracer);
}
