//! Reproduces the **§4 error-diagnosis case study**: two faults injected
//! into the CSEV model, detection time on AccMoS vs SSE.
//!
//! Fault 1 (wrap on overflow in the `quantity` data store) surfaces only
//! after a long run — the paper reports 0.74 s for AccMoS vs 450.14 s for
//! SSE. Fault 2 (downcast in the charging-power product) fires at the
//! start of the simulation, so both engines detect it almost immediately.

use accmos_bench::{arg_u64, detection_times};
use accmos_models::{csev_variant, CsevFault};
use accmos_testgen::random_tests;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_steps = arg_u64(&args, "--max-steps", 5_000_000);
    let seed = arg_u64(&args, "--seed", 2024);

    println!("CSEV error-diagnosis case study (max {max_steps} steps)");
    for (label, fault) in
        [("fault 1: quantity wrap-on-overflow", CsevFault::Quantity),
         ("fault 2: charging-power downcast", CsevFault::Power)]
    {
        let model = csev_variant(fault);
        let pre = accmos::preprocess(&model).expect("csev preprocesses");
        let tests = random_tests(&pre, 64, seed);
        let (acc_wall, acc_step, sse_wall, sse_step) =
            detection_times(&model, &tests, max_steps);
        println!("  {label}");
        println!(
            "    AccMoS: {:?} at {:?} | SSE: {:?} at {:?} | speedup {:.1}x",
            acc_wall,
            acc_step,
            sse_wall,
            sse_step,
            sse_wall.as_secs_f64() / acc_wall.as_secs_f64().max(1e-9),
        );
        assert_eq!(acc_step, sse_step, "both engines must detect at the same step");
    }
    println!("(paper: fault 1 detected in 0.74 s by AccMoS vs 450.14 s by SSE)");
}
