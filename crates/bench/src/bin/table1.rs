//! Reproduces **Table 1**: the benchmark model inventory.

fn main() {
    println!("Table 1: The description of benchmark models");
    println!("{:<7} {:<42} {:>7} {:>11}", "Model", "Functionality", "#Actor", "#SubSystem");
    let domains = [
        ("CPUT", "AutoSAR CPU task dispatch system"),
        ("CSEV", "Charging system of electric vehicle"),
        ("FMTM", "Factory Multi-point Temperature Monitor"),
        ("LANS", "LAN Switch controller"),
        ("LEDLC", "LED light controller"),
        ("RAC", "Robotic arm controller"),
        ("SPV", "Solar PV panel output control"),
        ("TCP", "TCP three-way handshake protocol"),
        ("TWC", "Train wheel speed controller"),
        ("UTPC", "Underwater thruster power control"),
    ];
    for (name, domain) in domains {
        let model = accmos_models::by_name(name);
        println!(
            "{:<7} {:<42} {:>7} {:>11}",
            name,
            domain,
            model.root.actor_count(),
            model.root.subsystem_count()
        );
    }
}
