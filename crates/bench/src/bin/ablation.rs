//! Ablation of the code-generation design choices: what does each piece of
//! simulation-oriented instrumentation cost, and how much does the
//! compiler's optimizer contribute?
//!
//! Matrix: {bare, +coverage, +diagnosis, full} x {-O0, -O3} on one
//! compute-heavy (SPV) and one control-heavy (TWC) benchmark, plus the
//! generated-Rust backend for a backend-language comparison.

use accmos::{AccMoS, CodegenOptions, OptLevel, RunOptions};
use accmos_bench::{arg_u64, record_run};
use accmos_codegen::generate_rust;
use accmos_ir::DiagnosticPolicy;
use accmos_testgen::random_tests;
use std::time::Duration;

fn configs() -> Vec<(&'static str, CodegenOptions)> {
    let full = CodegenOptions::accmos();
    let bare = CodegenOptions { instrument: false, ..full.clone() };
    let cov_only = CodegenOptions {
        instrument: true,
        coverage: true,
        policy: DiagnosticPolicy::none(),
        ..full.clone()
    };
    let diag_only = CodegenOptions { instrument: true, coverage: false, ..full.clone() };
    vec![("bare", bare), ("+coverage", cov_only), ("+diagnosis", diag_only), ("full", full)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let steps = arg_u64(&args, "--steps", 200_000);
    let seed = arg_u64(&args, "--seed", 2024);

    println!("Instrumentation / optimization ablation ({steps} steps)");
    println!(
        "{:<7} {:<12} {:>10} {:>10} {:>8}",
        "Model", "config", "-O0", "-O3", "O0/O3"
    );
    for name in ["SPV", "TWC"] {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();
        let tests = random_tests(&pre, 64, seed);
        for (label, codegen) in configs() {
            let mut times: Vec<Duration> = Vec::new();
            for opt in [OptLevel::O0, OptLevel::O3] {
                let sim = AccMoS::new()
                    .with_codegen(codegen.clone())
                    .with_opt(opt)
                    .prepare(&model)
                    .unwrap();
                let r = sim.run(steps, &tests, &RunOptions::default()).unwrap();
                sim.clean();
                let opt_tag = match opt {
                    OptLevel::O0 => "O0",
                    _ => "O3",
                };
                record_run("ablation", name, &format!("{label}-{opt_tag}"), steps, r.wall);
                times.push(r.wall);
            }
            println!(
                "{:<7} {:<12} {:>9.3}s {:>9.3}s {:>7.1}x",
                name,
                label,
                times[0].as_secs_f64(),
                times[1].as_secs_f64(),
                times[0].as_secs_f64() / times[1].as_secs_f64().max(1e-9)
            );
        }
        // Backend-language comparison: generated Rust at rustc -O. The
        // rustc-built simulator is as untrusted as the C one, so it runs
        // under the same supervision policy (kill timeout, retries,
        // quarantine) as the batch path.
        let program = generate_rust(&pre, &CodegenOptions::accmos());
        let (exe, dir, _) = accmos_backend::compile_rust(&program).unwrap();
        let supervisor = accmos::Supervisor::new(accmos::ExecPolicy::default());
        let run = accmos_backend::run_executable_supervised(
            &exe,
            &dir,
            steps,
            &tests,
            &RunOptions::default(),
            &supervisor,
        )
        .unwrap();
        accmos_backend::clean_build_dir(&dir);
        record_run("ablation", name, "rust", steps, run.report.wall);
        let note = if run.retries > 0 {
            format!("(rustc -O, {} retry(ies))", run.retries)
        } else {
            "(rustc -O)".to_string()
        };
        println!(
            "{:<7} {:<12} {:>10} {:>9.3}s   {note}",
            name,
            "rust-backend",
            "-",
            run.report.wall.as_secs_f64()
        );
    }
    println!("\nReading: the full-instrumentation overhead vs bare code is the cost of");
    println!("the paper's coverage bitmaps + diagnostic calls; O0/O3 shows how much of");
    println!("AccMoS's speed is the C compiler's optimizer (paper §4's pipelining note).");
}
