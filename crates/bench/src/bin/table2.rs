//! Reproduces **Table 2**: simulation time of AccMoS vs SSE, SSE_ac and
//! SSE_rac on the ten benchmark models.
//!
//! The paper simulates 50 million steps; the default here is scaled down
//! (`--steps N` to change) because speedup ratios are the reproduction
//! target, not absolute seconds. Codegen+compile time is reported
//! separately, as the harness measures the simulation loop alone.

use accmos_bench::{
    arg_tracer, arg_u64, batch_table, geo_mean, measure_model, record_engine_times,
    write_trace,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let steps = arg_u64(&args, "--steps", 50_000);
    let seed = arg_u64(&args, "--seed", 2024);
    let workers = arg_u64(&args, "--jobs", 4) as usize;
    let tracer = arg_tracer(&args);

    println!("Table 2: Comparison of simulation time ({steps} steps per model)");
    println!(
        "{:<7} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} | {:>7} {:>7} {:>6}",
        "Model", "AccMoS", "no-prune", "SSE", "SSE_ac", "SSE_rac", "x SSE", "x ac", "x rac",
        "gen(s)", "cc(s)", "pruned"
    );
    let (mut r_sse, mut r_ac, mut r_rac) = (Vec::new(), Vec::new(), Vec::new());
    let mut pruned_total = 0usize;
    for (name, _, _) in accmos_models::TABLE1 {
        let model = accmos_models::by_name(name);
        let start = tracer.as_ref().map(|t| t.now_us());
        let t = measure_model(&model, steps, seed);
        if let (Some(tr), Some(start)) = (&tracer, start) {
            tr.span("bench", &format!("table2 {name}"), start, tr.now_us() - start, 1);
        }
        record_engine_times("table2", &t);
        println!(
            "{:<7} {:>8.3}s {:>8.3}s {:>8.3}s {:>8.3}s {:>8.3}s | {:>7.1}x {:>7.1}x {:>7.1}x | {:>7.2} {:>7.2} {:>6}",
            t.model,
            t.accmos.as_secs_f64(),
            t.accmos_unpruned.as_secs_f64(),
            t.sse.as_secs_f64(),
            t.sse_ac.as_secs_f64(),
            t.sse_rac.as_secs_f64(),
            t.speedup_sse(),
            t.speedup_ac(),
            t.speedup_rac(),
            t.codegen.as_secs_f64(),
            t.compile.as_secs_f64(),
            t.pruned_sites,
        );
        r_sse.push(t.speedup_sse());
        r_ac.push(t.speedup_ac());
        r_rac.push(t.speedup_rac());
        pruned_total += t.pruned_sites;
    }
    println!(
        "instrumentation pruning: {pruned_total} diagnosis site(s) proven dead and dropped \
         across the suite (AccMoS column = pruned build, no-prune = all checks emitted)"
    );
    println!(
        "geomean speedup: {:.1}x vs SSE, {:.1}x vs SSE_ac, {:.1}x vs SSE_rac",
        geo_mean(r_sse.iter().copied()),
        geo_mean(r_ac.iter().copied()),
        geo_mean(r_rac.iter().copied()),
    );
    println!("(paper, 50M steps on i7-13700F: 215.3x / 76.32x / 19.8x average)");

    // Batched AccMoS pass over the same suite: unique programs compile
    // once on a worker pool, and the build cache can satisfy repeats.
    // Cold and cached compile times are reported separately — the table
    // above stays paper-faithful (cache disabled), this section shows
    // what the batching/caching layer saves on top.
    let models: Vec<_> =
        accmos_models::TABLE1.iter().map(|(n, _, _)| accmos_models::by_name(n)).collect();
    let batch_start = tracer.as_ref().map(|t| t.now_us());
    let batch = batch_table(&models, steps, seed, workers);
    if let (Some(tr), Some(start)) = (&tracer, batch_start) {
        tr.span("bench", "table2 batch pass", start, tr.now_us() - start, 1);
    }
    let s = &batch.summary;
    println!();
    println!(
        "Batch pass (BatchRunner, {workers} worker(s)): {} job(s), {} unique program(s), wall {:.2?}",
        s.jobs, s.unique_programs, s.total_wall
    );
    println!(
        "  compile: {} cold in {:.2?}, {} cache hit(s) in {:.2?} (reported separately; cold = paper-faithful)",
        s.cold_compiles, s.cold_compile_time, s.cached_compiles, s.cached_compile_time
    );
    println!("  codegen {:.2?}, simulation {:.2?}, {} failure(s)", s.codegen_time, s.run_time, s.failures);
    println!(
        "  supervision: {} retry(ies), {} degraded job(s), {} quarantined binarie(s)",
        s.retries, s.degraded, s.quarantined
    );
    let kinds: Vec<String> = s
        .retry_kinds
        .iter()
        .enumerate()
        .filter(|(_, n)| **n > 0)
        .map(|(i, n)| format!("{} x{n}", accmos::FailureKind::label(i)))
        .collect();
    if kinds.is_empty() {
        println!("  retries by kind: none; backoff slept {:.2?}", s.backoff_sleep);
    } else {
        println!("  retries by kind: {}; backoff slept {:.2?}", kinds.join(", "), s.backoff_sleep);
    }
    // In-process dispatch column: what `accmos serve` saves per run once
    // the simulator is cached — the fixed spawn+pipe cost versus one
    // `dlopen` + `accmos_entry` call, measured on single-step runs where
    // dispatch dominates.
    #[cfg(unix)]
    {
        let runs = arg_u64(&args, "--dispatch-runs", 30) as u32;
        let model = accmos_models::by_name("SPV");
        let dispatch_start = tracer.as_ref().map(|t| t.now_us());
        let d = accmos_bench::measure_dispatch_overhead(&model, runs);
        if let (Some(tr), Some(start)) = (&tracer, dispatch_start) {
            tr.span("bench", "table2 dispatch overhead", start, tr.now_us() - start, 1);
        }
        accmos_bench::record_run("table2-dispatch", &d.model, "accmos", 1, d.subprocess_per_run());
        accmos_bench::record_run(
            "table2-dispatch",
            &d.model,
            "accmos-dylib",
            1,
            d.dylib_per_run(),
        );
        println!();
        println!(
            "In-process dispatch (serve engine, cached {} simulator, {} runs of 1 step):",
            d.model, d.runs
        );
        println!(
            "  subprocess spawn+pipe {:.2?}/run, dylib accmos_entry {:.2?}/run ({:.1}x lower overhead)",
            d.subprocess_per_run(),
            d.dylib_per_run(),
            d.improvement(),
        );
    }
    write_trace(&args, &tracer);
}
