//! Reproduces the **§1 / Figure 1 motivating experiment**: the sample
//! accumulate-and-combine model overflows after a long run; SSE takes
//! 184.74 s to find it, hand-written C 0.37 s (~500x). Here: the SSE
//! stand-in vs the AccMoS-generated simulator on the same model.

use accmos_bench::detection_times;
use accmos_ir::{DataType, Scalar, TestVectors};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rate = accmos_bench::arg_u64(&args, "--rate", 500);

    let model = accmos_models::figure1();
    // Constant inflow: the int32 sum wraps after ~2^31 / (2*rate) steps.
    let mut tests = TestVectors::new();
    tests.push_column("A", DataType::I32, vec![Scalar::I32(rate as i32)]);
    tests.push_column("B", DataType::I32, vec![Scalar::I32(rate as i32)]);
    let horizon = (i32::MAX as u64) / rate + 16;

    let (acc_wall, acc_step, sse_wall, sse_step) =
        detection_times(&model, &tests, horizon);
    println!("Figure 1 motivating model: wrap on overflow after long-run accumulation");
    println!("  overflow at step {acc_step:?} (both engines agree: {sse_step:?})");
    println!(
        "  AccMoS: {:.3}s | SSE: {:.3}s | speedup {:.1}x",
        acc_wall.as_secs_f64(),
        sse_wall.as_secs_f64(),
        sse_wall.as_secs_f64() / acc_wall.as_secs_f64().max(1e-9)
    );
    println!("(paper: 0.37 s vs 184.74 s, ~500x)");
    assert_eq!(acc_step, sse_step);
}
