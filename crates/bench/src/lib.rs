//! # accmos-bench
//!
//! The benchmark harness reproducing **every table and figure** of the
//! AccMoS paper's evaluation (§4):
//!
//! | Binary       | Reproduces |
//! |--------------|------------|
//! | `table1`     | Table 1 — benchmark model inventory |
//! | `table2`     | Table 2 — simulation time: AccMoS vs SSE / SSE_ac / SSE_rac |
//! | `table3`     | Table 3 — coverage reached in equal wall-clock budgets |
//! | `case_study` | §4 error-diagnosis case study on the fault-injected CSEV |
//! | `figure1`    | §1 motivating example — time to detect the long-run overflow |
//!
//! Absolute numbers differ from the paper (different machine, scaled step
//! counts, SSE stand-ins instead of MATLAB); the *shape* — who wins and by
//! roughly what factor — is the reproduction target. See `EXPERIMENTS.md`
//! at the workspace root for recorded results.

use accmos::{AccMoS, BatchJob, BatchReport, BatchRunner, Engine as _, RunOptions, SimOptions};
use accmos_interp::{AcceleratorEngine, NormalEngine};
use accmos_ir::{Model, SimulationReport, TestVectors};
use accmos_testgen::random_tests;
use std::time::Duration;

/// Wall-clock measurements of the four engines on one model.
#[derive(Debug, Clone)]
pub struct EngineTimes {
    /// Model name.
    pub model: String,
    /// AccMoS: generated C, `-O3`, fully instrumented (with proven-safe
    /// instrumentation pruning, the default).
    pub accmos: Duration,
    /// AccMoS with `prune_proven_safe` off: every applicable diagnosis
    /// check emitted, proven-dead or not.
    pub accmos_unpruned: Duration,
    /// Diagnosis sites the interval analysis proved dead and codegen
    /// dropped from the pruned build.
    pub pruned_sites: usize,
    /// SSE stand-in: interpretive, diagnostics + coverage.
    pub sse: Duration,
    /// Accelerator stand-in: pre-flattened interpretive, host sync.
    pub sse_ac: Duration,
    /// Rapid Accelerator stand-in: generated C, `-O0`, host exchange.
    pub sse_rac: Duration,
    /// One-off code generation time for the AccMoS build.
    pub codegen: Duration,
    /// One-off compilation time for the AccMoS build.
    pub compile: Duration,
    /// Steps simulated.
    pub steps: u64,
}

impl EngineTimes {
    /// `SSE / AccMoS` speedup.
    pub fn speedup_sse(&self) -> f64 {
        ratio(self.sse, self.accmos)
    }

    /// `SSE_ac / AccMoS` speedup.
    pub fn speedup_ac(&self) -> f64 {
        ratio(self.sse_ac, self.accmos)
    }

    /// `SSE_rac / AccMoS` speedup.
    pub fn speedup_rac(&self) -> f64 {
        ratio(self.sse_rac, self.accmos)
    }
}

fn ratio(num: Duration, den: Duration) -> f64 {
    let d = den.as_secs_f64();
    if d > 0.0 {
        num.as_secs_f64() / d
    } else {
        f64::INFINITY
    }
}

/// Geometric mean of a ratio series (ignores non-finite entries).
pub fn geo_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v.is_finite() && v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        return f64::NAN;
    }
    (log_sum / n as f64).exp()
}

/// Run all four engines on `model` for `steps` steps with seeded random
/// stimulus, as the Table 2 experiment does.
///
/// The build cache is disabled on both compiled paths so the reported
/// codegen/compile columns are always *cold* — the paper's AccMoS numbers
/// include a real GCC invocation, and a warm cache would silently shrink
/// them. Cached timings are reported separately by [`batch_table`].
///
/// # Panics
///
/// Panics if preprocessing or compilation fails — benchmark models are
/// expected to be valid.
pub fn measure_model(model: &Model, steps: u64, seed: u64) -> EngineTimes {
    let pre = accmos::preprocess(model).expect("benchmark model preprocesses");
    let tests = random_tests(&pre, 64, seed);

    // AccMoS: generated C at -O3 with full instrumentation (pruned).
    let accmos_sim = AccMoS::new().without_cache().prepare(model).expect("accmos compile");
    let accmos_report =
        accmos_sim.run(steps, &tests, &RunOptions::default()).expect("accmos run");
    let codegen = accmos_sim.codegen_time();
    let compile = accmos_sim.compile_time();
    let pruned_sites = accmos_sim.program().pruned_sites;
    accmos_sim.clean();

    // Same configuration with instrumentation pruning disabled, to put a
    // number on what dropping proven-dead checks buys.
    let unpruned_opts = accmos::CodegenOptions {
        prune_proven_safe: false,
        ..accmos::CodegenOptions::accmos()
    };
    let unpruned_sim = AccMoS::new()
        .with_codegen(unpruned_opts)
        .without_cache()
        .prepare(model)
        .expect("unpruned compile");
    let unpruned_report =
        unpruned_sim.run(steps, &tests, &RunOptions::default()).expect("unpruned run");
    unpruned_sim.clean();

    // SSE_rac: uninstrumented generated C at -O0 + host exchange.
    let rac_sim =
        AccMoS::rapid_accelerator().without_cache().prepare(model).expect("rac compile");
    let rac_report = rac_sim.run(steps, &tests, &RunOptions::default()).expect("rac run");
    rac_sim.clean();

    // Interpretive stand-ins.
    let sse = NormalEngine::new().run(&pre, &tests, &SimOptions::steps(steps));
    let sse_ac = AcceleratorEngine::new().run(&pre, &tests, &SimOptions::steps(steps));

    EngineTimes {
        model: model.name.clone(),
        accmos: accmos_report.wall,
        accmos_unpruned: unpruned_report.wall,
        pruned_sites,
        sse: sse.wall,
        sse_ac: sse_ac.wall,
        sse_rac: rac_report.wall,
        codegen,
        compile,
        steps,
    }
}

/// Run every model through the [`BatchRunner`] (one AccMoS job per model,
/// seeded random stimulus) and return the batch report.
///
/// The summary splits compile accounting into cold invocations and
/// build-cache hits, so harnesses can print cached timings *next to* the
/// paper-faithful cold numbers instead of mixing them.
///
/// # Panics
///
/// Panics if a benchmark model fails to preprocess or the system has no C
/// compiler.
pub fn batch_table(models: &[Model], steps: u64, seed: u64, workers: usize) -> BatchReport {
    let jobs: Vec<BatchJob> = models
        .iter()
        .map(|model| {
            let pre = accmos::preprocess(model).expect("benchmark model preprocesses");
            let tests = random_tests(&pre, 64, seed);
            BatchJob::model(model.name.clone(), model.clone(), tests, steps)
        })
        .collect();
    BatchRunner::new(AccMoS::new())
        .with_workers(workers)
        .run(jobs)
        .expect("batch runner starts")
}

/// Coverage percentages of one run, in Table 3 column order
/// (actor, condition, decision, MC/DC).
pub fn coverage_row(report: &SimulationReport) -> [f64; 4] {
    let cov = report.coverage.expect("coverage collected");
    accmos_ir::CoverageKind::ALL.map(|k| cov.percent(k))
}

/// Run the Table 3 equal-time coverage experiment on one model: AccMoS and
/// SSE each get the same wall-clock budget.
///
/// The default build cache stays enabled here: the Table 3 harness calls
/// this once per budget on the same model, and compile time is not part
/// of the measured budget, so the second and third budgets reuse the
/// executable instead of paying GCC again.
pub fn coverage_within_budget(
    model: &Model,
    budget: Duration,
    seed: u64,
) -> (SimulationReport, SimulationReport) {
    let pre = accmos::preprocess(model).expect("benchmark model preprocesses");
    let tests = random_tests(&pre, 256, seed);

    let sim = AccMoS::new().prepare(model).expect("accmos compile");
    let accmos_report = sim
        .run(
            u64::MAX / 2,
            &tests,
            &RunOptions { time_budget: Some(budget), ..RunOptions::default() },
        )
        .expect("accmos run");
    sim.clean();

    let sse_report = NormalEngine::new().run(
        &pre,
        &tests,
        &SimOptions::steps(u64::MAX / 2).with_budget(budget),
    );
    (accmos_report, sse_report)
}

/// One lane-vs-scalar throughput measurement ([`measure_lane_speedup`]):
/// the same `lanes * steps` of simulation work done as `lanes` sequential
/// scalar runs and as one lane-parallel run.
#[derive(Debug, Clone)]
pub struct LaneSpeedup {
    /// Model name.
    pub model: String,
    /// Lane width of the lane-parallel build.
    pub lanes: usize,
    /// Steps per test vector.
    pub steps: u64,
    /// End-to-end host wall time of the `lanes` sequential scalar runs
    /// (best of two passes).
    pub scalar_wall: Duration,
    /// End-to-end host wall time of the single lane-parallel run over
    /// the same stimuli (best of two passes).
    pub lane_wall: Duration,
    /// Aggregate report of the lane run (per-lane digests, OR-reduced
    /// coverage) for cross-checking against the scalar runs.
    pub lane_report: SimulationReport,
}

impl LaneSpeedup {
    /// `scalar / lane` wall-clock speedup for the same total work.
    pub fn speedup(&self) -> f64 {
        ratio(self.scalar_wall, self.lane_wall)
    }
}

/// Measure lane-parallel throughput on one model: evaluate `lanes`
/// distinct seeded stimuli for `steps` steps each, first as `lanes`
/// sequential scalar runs, then as one lane-parallel run, and report
/// both wall-clock totals. The work is identical by construction — the
/// lane run's per-lane digests equal the scalar runs' digests (asserted
/// here, so a lane-codegen regression can never masquerade as a
/// speedup).
///
/// Both sides are timed end-to-end on the host (stimulus hand-off,
/// process launch, simulation, report parse): evaluating N independent
/// vectors on the scalar simulator takes N launches — each vector needs
/// fresh model state — while the lane build takes one. That per-launch
/// fixed cost is precisely what lane mode amortizes (the per-lane
/// simulation code itself compiles to the scalar shape and runs at
/// parity), so it belongs in the measurement. Each side runs three
/// passes, interleaved, and keeps its minimum — the usual guard against
/// scheduler noise.
///
/// The build cache stays enabled: compile time is not part of either
/// measurement, and the scalar binary is typically already cached by the
/// coverage experiment that precedes this in the Table 3 harness.
///
/// # Panics
///
/// Panics if preprocessing, compilation or a run fails, or if a lane
/// digest diverges from its scalar counterpart.
pub fn measure_lane_speedup(
    model: &Model,
    steps: u64,
    seed: u64,
    lanes: usize,
) -> LaneSpeedup {
    let lanes = lanes.max(2);
    let pre = accmos::preprocess(model).expect("benchmark model preprocesses");
    let stimuli: Vec<TestVectors> = (0..lanes as u64)
        .map(|lane| random_tests(&pre, 64, seed.wrapping_add(lane)))
        .collect();

    let scalar_sim = AccMoS::new().prepare(model).expect("scalar compile");
    let lane_sim = AccMoS::new().with_lanes(lanes).prepare(model).expect("lane compile");
    let lane_opts = RunOptions {
        lane_tests: stimuli[1..].to_vec(),
        ..RunOptions::default()
    };

    let mut scalar_wall = Duration::MAX;
    let mut scalar_digests = Vec::new();
    let mut lane_wall = Duration::MAX;
    let mut lane_report = None;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        let digests: Vec<u64> = stimuli
            .iter()
            .map(|tests| {
                scalar_sim
                    .run(steps, tests, &RunOptions::default())
                    .expect("scalar run")
                    .output_digest
            })
            .collect();
        scalar_wall = scalar_wall.min(start.elapsed());
        scalar_digests = digests;

        let start = std::time::Instant::now();
        let report = lane_sim.run(steps, &stimuli[0], &lane_opts).expect("lane run");
        lane_wall = lane_wall.min(start.elapsed());
        lane_report = Some(report);
    }
    scalar_sim.clean();
    lane_sim.clean();

    let lane_report = lane_report.expect("measured at least once");
    for (lane, scalar_digest) in scalar_digests.iter().enumerate() {
        assert_eq!(
            lane_report.lane_reports[lane].output_digest, *scalar_digest,
            "{}: lane {lane} digest diverged from its scalar run",
            model.name
        );
    }
    LaneSpeedup {
        model: model.name.clone(),
        lanes,
        steps,
        scalar_wall,
        lane_wall,
        lane_report,
    }
}

/// Fused-segment coverage of one model's lane-`lanes` build: how many
/// schedule actors join the fused auto-vectorizable lane segments under
/// the analyzer's *semantic* lane-safety proof (specialization on, the
/// default) versus the *syntactic* branch-free baseline (specialization
/// off). Codegen only — nothing is compiled or run.
#[derive(Debug, Clone)]
pub struct FusedCoverage {
    /// Model name.
    pub model: String,
    /// Lane width of the measured build.
    pub lanes: usize,
    /// Actors fused under the analyzer's semantic lane-safety proof.
    pub semantic_fused: usize,
    /// Actors fused under the syntactic branch-free baseline.
    pub syntactic_fused: usize,
    /// Actors in the schedule (same in both builds — elided actors still
    /// occupy a schedule slot).
    pub total_actors: usize,
    /// Actors the semantic build folded to literals.
    pub folded: usize,
    /// Actors the semantic build elided as dead paths.
    pub elided: usize,
    /// Branch arms the semantic build specialized to their proven case.
    pub specialized_arms: usize,
}

/// Measure [`FusedCoverage`] for `model` at lane width `lanes`.
///
/// # Panics
///
/// Panics if preprocessing fails — benchmark models are expected to be
/// valid.
pub fn fused_coverage(model: &Model, lanes: usize) -> FusedCoverage {
    let pre = accmos::preprocess(model).expect("benchmark model preprocesses");
    let semantic_opts = accmos::CodegenOptions::accmos().lanes(lanes);
    let syntactic_opts = semantic_opts.clone().without_specialization();
    let semantic = accmos_codegen::generate(&pre, &semantic_opts);
    let syntactic = accmos_codegen::generate(&pre, &syntactic_opts);
    FusedCoverage {
        model: model.name.clone(),
        lanes,
        semantic_fused: semantic.fused_actors,
        syntactic_fused: syntactic.fused_actors,
        total_actors: semantic.total_actors,
        folded: semantic.folded_actors,
        elided: semantic.elided_actors,
        specialized_arms: semantic.specialized_arms,
    }
}

/// Per-run dispatch overhead of the two execution engines on an
/// already-compiled simulator ([`measure_dispatch_overhead`]): what it
/// costs to *start* a run when compilation is cached, which is exactly
/// the cost `accmos serve` exists to cut.
#[derive(Debug, Clone)]
pub struct DispatchOverhead {
    /// Model name.
    pub model: String,
    /// Runs per engine (each 1 step, so dispatch dominates).
    pub runs: u32,
    /// Total wall time of the subprocess (spawn + pipe) runs.
    pub subprocess: Duration,
    /// Total wall time of the in-process (`dlopen` + `accmos_entry`)
    /// runs.
    pub dylib: Duration,
}

impl DispatchOverhead {
    /// Mean per-run cost of the subprocess engine.
    pub fn subprocess_per_run(&self) -> Duration {
        self.subprocess / self.runs.max(1)
    }

    /// Mean per-run cost of the in-process engine.
    pub fn dylib_per_run(&self) -> Duration {
        self.dylib / self.runs.max(1)
    }

    /// `subprocess / dylib` overhead reduction factor.
    pub fn improvement(&self) -> f64 {
        ratio(self.subprocess, self.dylib)
    }
}

/// Measure [`DispatchOverhead`] on `model`: compile once (executable and
/// shared object from the same generated program), warm both paths, then
/// time `runs` single-step runs through each engine. One step makes the
/// simulation itself negligible, so the measurement isolates the fixed
/// per-run cost — `fork`/`exec`/pipe/report-parse for the subprocess
/// engine versus scratch-copy/`dlopen`/call for the in-process engine.
///
/// # Panics
///
/// Panics if preprocessing, compilation or any run fails.
#[cfg(unix)]
pub fn measure_dispatch_overhead(model: &Model, runs: u32) -> DispatchOverhead {
    let pre = accmos::preprocess(model).expect("benchmark model preprocesses");
    let tests = random_tests(&pre, 8, 1);
    let opts = RunOptions::default();

    let sim = AccMoS::new().prepare(model).expect("accmos compile");
    let compiler = accmos::Compiler::detect().expect("C compiler").with_opt(accmos::OptLevel::O3);
    let dylib = compiler.compile_shared(sim.program()).expect("shared-object compile");
    let runner = accmos::DylibRunner::for_dylib(&dylib);

    // Warm both paths (page cache, dynamic loader) before timing.
    let sub_digest = sim.run(1, &tests, &opts).expect("subprocess warmup").output_digest;
    let dy_digest = runner.run(1, &tests, &opts, None).expect("dylib warmup").report.output_digest;
    assert_eq!(sub_digest, dy_digest, "{}: engines must agree before timing", model.name);

    let start = std::time::Instant::now();
    for _ in 0..runs {
        sim.run(1, &tests, &opts).expect("subprocess dispatch run");
    }
    let subprocess = start.elapsed();

    let start = std::time::Instant::now();
    for _ in 0..runs {
        runner.run(1, &tests, &opts, None).expect("dylib dispatch run");
    }
    let dylib_total = start.elapsed();

    dylib.clean();
    sim.clean();
    DispatchOverhead { model: model.name.clone(), runs, subprocess, dylib: dylib_total }
}

/// Time-to-first-diagnostic on both paths (the case-study measurement).
/// Returns `(accmos_wall, accmos_step, sse_wall, sse_step)`; steps are
/// `None` when no diagnostic fired within `max_steps`.
pub fn detection_times(
    model: &Model,
    tests: &TestVectors,
    max_steps: u64,
) -> (Duration, Option<u64>, Duration, Option<u64>) {
    let pre = accmos::preprocess(model).expect("model preprocesses");

    let sim = AccMoS::new().prepare(model).expect("accmos compile");
    let accmos_report = sim
        .run(max_steps, tests, &RunOptions { stop_on_diagnostic: true, ..Default::default() })
        .expect("accmos run");
    sim.clean();
    let accmos_step =
        accmos_report.diagnostics.iter().map(|d| d.first_step).min();

    let sse_report = NormalEngine::new().run(
        &pre,
        tests,
        &SimOptions::steps(max_steps).stopping_on_diagnostic(),
    );
    let sse_step = sse_report.diagnostics.iter().map(|d| d.first_step).min();

    (accmos_report.wall, accmos_step, sse_report.wall, sse_step)
}

/// Append one run-ledger record to the default state directory (honours
/// `ACCMOS_CACHE_DIR`), so benchmark history feeds `accmos trends`.
/// Best-effort: ledger I/O never fails a benchmark.
pub fn record_run(source: &str, model: &str, engine: &str, steps: u64, wall: Duration) {
    record_lane_run(source, model, engine, steps, wall, 1);
}

/// Like [`record_run`], but stamping the lane width, so `accmos trends`
/// keys lane configurations separately (`accmos@8` vs plain `accmos`)
/// instead of mixing their timings into one baseline.
pub fn record_lane_run(
    source: &str,
    model: &str,
    engine: &str,
    steps: u64,
    wall: Duration,
    lanes: u64,
) {
    let mut rec = accmos::RunRecord::new(source, model);
    rec.engine = engine.to_string();
    rec.steps = steps;
    rec.lanes = lanes.max(1);
    rec.outcome = accmos::telemetry::outcome::OK.to_string();
    rec.phases.run_us = accmos::telemetry::micros(wall);
    let ledger = accmos::RunLedger::in_dir(accmos::default_state_dir());
    let _ = ledger.append(&rec);
}

/// Append one run-ledger record for a [`FusedCoverage`] measurement: the
/// fused/total counts of both builds land in the record's note, keyed
/// under `engine = "accmos@L"` so lane configurations stay separate.
/// Best-effort, like every ledger write here.
pub fn record_fused_coverage(source: &str, fc: &FusedCoverage) {
    let mut rec = accmos::RunRecord::new(source, &fc.model);
    rec.engine = "accmos".to_string();
    rec.lanes = fc.lanes.max(1) as u64;
    rec.outcome = accmos::telemetry::outcome::OK.to_string();
    rec.note = format!(
        "fused {}/{} semantic vs {}/{} syntactic; folded {}, elided {}, specialized arms {}",
        fc.semantic_fused,
        fc.total_actors,
        fc.syntactic_fused,
        fc.total_actors,
        fc.folded,
        fc.elided,
        fc.specialized_arms
    );
    let ledger = accmos::RunLedger::in_dir(accmos::default_state_dir());
    let _ = ledger.append(&rec);
}

/// Append one ledger record per engine measured by [`measure_model`],
/// under `source` (e.g. `"table2"`). The AccMoS entry also carries the
/// cold codegen/compile costs; interpretive stand-ins have none.
pub fn record_engine_times(source: &str, times: &EngineTimes) {
    let ledger = accmos::RunLedger::in_dir(accmos::default_state_dir());
    let engines = [
        ("accmos", times.accmos),
        ("accmos-noprune", times.accmos_unpruned),
        ("sse", times.sse),
        ("sse-ac", times.sse_ac),
        ("sse-rac", times.sse_rac),
    ];
    for (engine, wall) in engines {
        let mut rec = accmos::RunRecord::new(source, &times.model);
        rec.engine = engine.to_string();
        rec.steps = times.steps;
        rec.outcome = accmos::telemetry::outcome::OK.to_string();
        rec.phases.run_us = accmos::telemetry::micros(wall);
        if engine == "accmos" {
            rec.phases.codegen_us = accmos::telemetry::micros(times.codegen);
            rec.phases.compile_us = accmos::telemetry::micros(times.compile);
        }
        let _ = ledger.append(&rec);
    }
}

/// Parse a `--flag value` style u64 argument.
pub fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse a `--flag value` style string argument.
pub fn arg_str<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// `--trace-out PATH` support for the table harnesses: a tracer to hand
/// out when the flag is present. Harnesses record one coarse `bench` span
/// per experiment around their measurement calls and finish with
/// [`write_trace`].
pub fn arg_tracer(args: &[String]) -> Option<accmos::Tracer> {
    arg_str(args, "--trace-out").map(|_| accmos::Tracer::new())
}

/// Write the accumulated trace as Chrome trace-event JSON to the
/// `--trace-out` path, if both were given. Trace I/O never fails a
/// benchmark — errors go to stderr.
pub fn write_trace(args: &[String], tracer: &Option<accmos::Tracer>) {
    let (Some(tracer), Some(path)) = (tracer, arg_str(args, "--trace-out")) else {
        return;
    };
    match tracer.write_chrome_json(std::path::Path::new(path)) {
        Ok(()) => eprintln!("wrote trace {path}"),
        Err(e) => eprintln!("cannot write trace {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_of_powers() {
        let g = geo_mean([1.0, 100.0]);
        assert!((g - 10.0).abs() < 1e-9);
        assert!(geo_mean([]).is_nan());
        assert!((geo_mean([2.0, f64::INFINITY, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> =
            ["prog", "--steps", "500"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_u64(&args, "--steps", 7), 500);
        assert_eq!(arg_u64(&args, "--rows", 7), 7);
    }

    #[test]
    fn measure_small_model_orders_engines() {
        // A quick sanity run on the smallest benchmark: compiled code must
        // not be slower than the interpretive SSE stand-in.
        let model = accmos_models::by_name("SPV");
        let t = measure_model(&model, 20_000, 1);
        assert_eq!(t.steps, 20_000);
        assert!(
            t.sse > t.accmos,
            "SSE ({:?}) should be slower than AccMoS ({:?})",
            t.sse,
            t.accmos
        );
        assert!(t.speedup_sse() > 1.0);
    }
}
