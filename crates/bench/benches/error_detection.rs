//! Criterion bench behind the **§4 case study**: time to detect the
//! injected CSEV quantity overflow with the compiled simulator.

use accmos::{AccMoS, RunOptions};
use accmos_models::{csev_variant, CsevFault};
use accmos_testgen::random_tests;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_detection(c: &mut Criterion) {
    let model = csev_variant(CsevFault::Quantity);
    let pre = accmos::preprocess(&model).unwrap();
    let tests = random_tests(&pre, 64, 1);

    let mut group = c.benchmark_group("error_detection/CSEV_quantity");
    group.sample_size(10);
    let sim = AccMoS::new().prepare(&model).unwrap();
    group.bench_function("accmos_stop_on_diag", |b| {
        b.iter(|| {
            let r = sim
                .run(
                    5_000_000,
                    &tests,
                    &RunOptions { stop_on_diagnostic: true, ..Default::default() },
                )
                .unwrap();
            assert!(!r.diagnostics.is_empty());
            r
        })
    });
    group.finish();
    sim.clean();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
