//! Micro-bench behind the **§4 case study**: time to detect the
//! injected CSEV quantity overflow with the compiled simulator.

#[path = "timing.rs"]
mod timing;

use accmos::{AccMoS, RunOptions};
use accmos_models::{csev_variant, CsevFault};
use accmos_testgen::random_tests;
use timing::bench;

fn main() {
    let model = csev_variant(CsevFault::Quantity);
    let pre = accmos::preprocess(&model).unwrap();
    let tests = random_tests(&pre, 64, 1);

    println!("error_detection/CSEV_quantity");
    let sim = AccMoS::new().prepare(&model).unwrap();
    bench("accmos_stop_on_diag", 10, || {
        let r = sim
            .run(
                5_000_000,
                &tests,
                &RunOptions { stop_on_diagnostic: true, ..Default::default() },
            )
            .unwrap();
        assert!(!r.diagnostics.is_empty());
    });
    sim.clean();
}
