//! Minimal shared timing loop for the dependency-free benches.

use std::time::{Duration, Instant};

/// Run `f` once to warm up, then `iters` timed iterations; print mean and
/// minimum wall-clock time under `label`.
pub fn bench(label: &str, iters: u32, mut f: impl FnMut()) {
    f(); // warm-up (page in the executable, fill caches)
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let dt = start.elapsed();
        total += dt;
        min = min.min(dt);
    }
    println!(
        "  {label:<22} mean {:>12.3?}   min {:>12.3?}   ({iters} iters)",
        total / iters,
        min
    );
}
