//! Micro-bench behind **Table 2**: per-step simulation cost of each
//! engine on a compute-heavy (SPV) and a control-heavy (CSEV) benchmark.
//! `cargo bench -p accmos-bench --bench simulation_time`
//!
//! Dependency-free harness: each engine is timed over a fixed number of
//! iterations with `std::time::Instant` and the mean/min are printed.

#[path = "timing.rs"]
mod timing;

use accmos::{AccMoS, Engine as _, RunOptions, SimOptions};
use accmos_interp::{AcceleratorEngine, NormalEngine};
use accmos_testgen::random_tests;
use timing::bench;

fn main() {
    for name in ["SPV", "CSEV"] {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();
        let tests = random_tests(&pre, 64, 1);
        let steps = 2_000u64;

        println!("simulation_time/{name} ({steps} steps)");
        let accmos_sim = AccMoS::new().prepare(&model).unwrap();
        bench("accmos", 10, || {
            accmos_sim.run(steps, &tests, &RunOptions::default()).unwrap();
        });
        let rac_sim = AccMoS::rapid_accelerator().prepare(&model).unwrap();
        bench("sse_rac", 10, || {
            rac_sim.run(steps, &tests, &RunOptions::default()).unwrap();
        });
        bench("sse", 10, || {
            NormalEngine::new().run(&pre, &tests, &SimOptions::steps(steps));
        });
        bench("sse_ac", 10, || {
            AcceleratorEngine::new().run(&pre, &tests, &SimOptions::steps(steps));
        });
        accmos_sim.clean();
        rac_sim.clean();
    }
}
