//! Criterion bench behind **Table 2**: per-step simulation cost of each
//! engine on a compute-heavy (SPV) and a control-heavy (CSEV) benchmark.
//! `cargo bench -p accmos-bench --bench simulation_time`

use accmos::{AccMoS, Engine as _, RunOptions, SimOptions};
use accmos_interp::{AcceleratorEngine, NormalEngine};
use accmos_testgen::random_tests;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_engines(c: &mut Criterion) {
    for name in ["SPV", "CSEV"] {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();
        let tests = random_tests(&pre, 64, 1);
        let steps = 2_000u64;

        let mut group = c.benchmark_group(format!("simulation_time/{name}"));
        group.sample_size(10);

        let accmos_sim = AccMoS::new().prepare(&model).unwrap();
        group.bench_function("accmos", |b| {
            b.iter(|| accmos_sim.run(steps, &tests, &RunOptions::default()).unwrap())
        });
        let rac_sim = AccMoS::rapid_accelerator().prepare(&model).unwrap();
        group.bench_function("sse_rac", |b| {
            b.iter(|| rac_sim.run(steps, &tests, &RunOptions::default()).unwrap())
        });
        group.bench_function("sse", |b| {
            b.iter(|| NormalEngine::new().run(&pre, &tests, &SimOptions::steps(steps)))
        });
        group.bench_function("sse_ac", |b| {
            b.iter(|| AcceleratorEngine::new().run(&pre, &tests, &SimOptions::steps(steps)))
        });
        group.finish();
        accmos_sim.clean();
        rac_sim.clean();
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
