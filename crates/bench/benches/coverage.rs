//! Micro-bench behind **Table 3**: steps (and hence coverage) each
//! engine achieves per unit time, plus the cost of coverage collection
//! itself (instrumented vs uninstrumented generated code).

#[path = "timing.rs"]
mod timing;

use accmos::{AccMoS, CodegenOptions, RunOptions};
use accmos_testgen::random_tests;
use timing::bench;

fn main() {
    let model = accmos_models::by_name("TWC");
    let pre = accmos::preprocess(&model).unwrap();
    let tests = random_tests(&pre, 64, 1);
    let steps = 5_000u64;

    println!("coverage/TWC ({steps} steps)");
    let instrumented = AccMoS::new().prepare(&model).unwrap();
    bench("instrumented", 10, || {
        instrumented.run(steps, &tests, &RunOptions::default()).unwrap();
    });

    let bare = AccMoS::new()
        .with_codegen(CodegenOptions { instrument: false, ..CodegenOptions::accmos() })
        .prepare(&model)
        .unwrap();
    bench("uninstrumented", 10, || {
        bare.run(steps, &tests, &RunOptions::default()).unwrap();
    });
    instrumented.clean();
    bare.clean();
}
