//! Criterion bench behind **Table 3**: steps (and hence coverage) each
//! engine achieves per unit time, plus the cost of coverage collection
//! itself (instrumented vs uninstrumented generated code).

use accmos::{AccMoS, CodegenOptions, RunOptions};
use accmos_testgen::random_tests;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_coverage(c: &mut Criterion) {
    let model = accmos_models::by_name("TWC");
    let pre = accmos::preprocess(&model).unwrap();
    let tests = random_tests(&pre, 64, 1);
    let steps = 5_000u64;

    let mut group = c.benchmark_group("coverage/TWC");
    group.sample_size(10);

    let instrumented = AccMoS::new().prepare(&model).unwrap();
    group.bench_function("instrumented", |b| {
        b.iter(|| instrumented.run(steps, &tests, &RunOptions::default()).unwrap())
    });

    let bare = AccMoS::new()
        .with_codegen(CodegenOptions { instrument: false, ..CodegenOptions::accmos() })
        .prepare(&model)
        .unwrap();
    group.bench_function("uninstrumented", |b| {
        b.iter(|| bare.run(steps, &tests, &RunOptions::default()).unwrap())
    });
    group.finish();
    instrumented.clean();
    bare.clean();
}

criterion_group!(benches, bench_coverage);
criterion_main!(benches);
