//! Micro-bench behind the **Figure 1 motivating experiment**: the
//! long-run overflow detection on the sample model, compiled vs
//! interpreted.

#[path = "timing.rs"]
mod timing;

use accmos::{AccMoS, Engine as _, RunOptions, SimOptions};
use accmos_interp::NormalEngine;
use accmos_ir::{DataType, Scalar, TestVectors};
use timing::bench;

fn main() {
    let model = accmos_models::figure1();
    let pre = accmos::preprocess(&model).unwrap();
    let mut tests = TestVectors::new();
    tests.push_column("A", DataType::I32, vec![Scalar::I32(1 << 16)]);
    tests.push_column("B", DataType::I32, vec![Scalar::I32(1 << 16)]);
    let horizon = (i32::MAX as u64 >> 16) + 16; // past the wrap point

    println!("figure1/overflow_detection");
    let sim = AccMoS::new().prepare(&model).unwrap();
    bench("accmos", 10, || {
        sim.run(
            horizon,
            &tests,
            &RunOptions { stop_on_diagnostic: true, ..Default::default() },
        )
        .unwrap();
    });
    bench("sse", 10, || {
        NormalEngine::new().run(
            &pre,
            &tests,
            &SimOptions::steps(horizon).stopping_on_diagnostic(),
        );
    });
    sim.clean();
}
