//! Criterion bench behind the **Figure 1 motivating experiment**: the
//! long-run overflow detection on the sample model, compiled vs
//! interpreted.

use accmos::{AccMoS, Engine as _, RunOptions, SimOptions};
use accmos_interp::NormalEngine;
use accmos_ir::{DataType, Scalar, TestVectors};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figure1(c: &mut Criterion) {
    let model = accmos_models::figure1();
    let pre = accmos::preprocess(&model).unwrap();
    let mut tests = TestVectors::new();
    tests.push_column("A", DataType::I32, vec![Scalar::I32(1 << 16)]);
    tests.push_column("B", DataType::I32, vec![Scalar::I32(1 << 16)]);
    let horizon = (i32::MAX as u64 >> 16) + 16; // past the wrap point

    let mut group = c.benchmark_group("figure1/overflow_detection");
    group.sample_size(10);
    let sim = AccMoS::new().prepare(&model).unwrap();
    group.bench_function("accmos", |b| {
        b.iter(|| {
            sim.run(
                horizon,
                &tests,
                &RunOptions { stop_on_diagnostic: true, ..Default::default() },
            )
            .unwrap()
        })
    });
    group.bench_function("sse", |b| {
        b.iter(|| {
            NormalEngine::new().run(
                &pre,
                &tests,
                &SimOptions::steps(horizon).stopping_on_diagnostic(),
            )
        })
    });
    group.finish();
    sim.clean();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
