//! A from-scratch XML 1.0 subset parser and writer.
//!
//! The paper's preprocessing step parses the Simulink model *"into an XML
//! file, facilitating the generation of instrumentation code and actor code
//! by providing actor information"* (§3.4). The offline crate set contains
//! no XML library, so AccMoS-RS implements the subset MDLX needs: nested
//! elements, attributes (single or double quoted), character data, the five
//! predefined entities plus numeric character references, comments, CDATA
//! sections, and the XML declaration. DTDs and namespaces are out of scope.

use std::fmt;

/// Position of an error in the input text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextPos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for TextPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Error raised while parsing XML text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Where the error occurred.
    pub pos: TextPos,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error at {}: {}", self.pos, self.detail)
    }
}

impl std::error::Error for XmlError {}

/// A node of the document tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A child element.
    Element(XmlElement),
    /// Character data (entity-decoded).
    Text(String),
}

/// An element: name, attributes and children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

impl XmlElement {
    /// A new element with the given tag name.
    pub fn new(name: impl Into<String>) -> XmlElement {
        XmlElement { name: name.into(), ..XmlElement::default() }
    }

    /// Builder-style: add an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl fmt::Display) -> XmlElement {
        self.attrs.push((name.into(), value.to_string()));
        self
    }

    /// Builder-style: add a child element.
    pub fn child(mut self, child: XmlElement) -> XmlElement {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Builder-style: add text content.
    pub fn text(mut self, text: impl Into<String>) -> XmlElement {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Look up an attribute value.
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The first child element with the given tag name.
    pub fn find(&self, name: &str) -> Option<&XmlElement> {
        self.elements().find(|e| e.name == name)
    }

    /// Iterator over all child elements.
    pub fn elements(&self) -> impl Iterator<Item = &XmlElement> {
        self.children.iter().filter_map(|n| match n {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// Iterator over child elements with the given tag name.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.elements().filter(move |e| e.name == name)
    }

    /// Concatenated direct text content, trimmed.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let XmlNode::Text(t) = node {
                out.push_str(t);
            }
        }
        out.trim().to_owned()
    }

    /// Serialize to a pretty-printed XML document with declaration.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        write_element(self, 0, &mut out);
        out
    }
}

fn write_element(el: &XmlElement, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push('<');
    out.push_str(&el.name);
    for (name, value) in &el.attrs {
        out.push(' ');
        out.push_str(name);
        out.push_str("=\"");
        escape_into(value, true, out);
        out.push('"');
    }
    if el.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    let text_only = el.children.iter().all(|c| matches!(c, XmlNode::Text(_)));
    out.push('>');
    if text_only {
        for node in &el.children {
            if let XmlNode::Text(t) = node {
                escape_into(t, false, out);
            }
        }
    } else {
        out.push('\n');
        for node in &el.children {
            match node {
                XmlNode::Element(e) => write_element(e, depth + 1, out),
                XmlNode::Text(t) => {
                    let trimmed = t.trim();
                    if !trimmed.is_empty() {
                        for _ in 0..depth + 1 {
                            out.push_str("  ");
                        }
                        escape_into(trimmed, false, out);
                        out.push('\n');
                    }
                }
            }
        }
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push_str("</");
    out.push_str(&el.name);
    out.push_str(">\n");
}

fn escape_into(text: &str, in_attr: bool, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attr => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
}

/// Parse an XML document, returning its root element.
///
/// # Errors
///
/// Returns an [`XmlError`] with position information on malformed input:
/// mismatched tags, bad entities, unterminated constructs, duplicate
/// attributes, or trailing garbage.
///
/// # Examples
///
/// ```
/// use accmos_parse::xml::parse_document;
///
/// let root = parse_document("<a x=\"1\"><b/>hi</a>")?;
/// assert_eq!(root.name, "a");
/// assert_eq!(root.get_attr("x"), Some("1"));
/// assert_eq!(root.text_content(), "hi");
/// # Ok::<(), accmos_parse::xml::XmlError>(())
/// ```
pub fn parse_document(input: &str) -> Result<XmlElement, XmlError> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser { bytes: input.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn err(&self, detail: impl Into<String>) -> XmlError {
        XmlError { pos: TextPos { line: self.line, col: self.col }, detail: detail.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn skip_comment(&mut self) -> Result<bool, XmlError> {
        if !self.eat("<!--") {
            return Ok(false);
        }
        while !self.eat("-->") {
            if self.bump().is_none() {
                return Err(self.err("unterminated comment"));
            }
        }
        Ok(true)
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_ws();
        if self.eat("<?xml") {
            while !self.eat("?>") {
                if self.bump().is_none() {
                    return Err(self.err("unterminated xml declaration"));
                }
            }
        }
        self.skip_misc()
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if !self.skip_comment()? {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let name = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in name"))?;
        if name.as_bytes()[0].is_ascii_digit() {
            return Err(self.err(format!("name `{name}` must not start with a digit")));
        }
        Ok(name.to_owned())
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        // `&` already consumed.
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                break;
            }
            if self.pos - start > 10 {
                return Err(self.err("unterminated entity"));
            }
            self.bump();
        }
        let entity = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        let entity = entity.to_owned();
        if self.bump() != Some(b';') {
            return Err(self.err("unterminated entity"));
        }
        match entity.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            num => {
                let code = if let Some(hex) = num.strip_prefix("#x") {
                    u32::from_str_radix(hex, 16).ok()
                } else if let Some(dec) = num.strip_prefix('#') {
                    dec.parse::<u32>().ok()
                } else {
                    None
                };
                code.and_then(char::from_u32).ok_or_else(|| self.err(format!("bad entity `&{num};`")))
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'&') => {
                    self.bump();
                    out.push(self.parse_entity()?);
                }
                Some(b'<') => return Err(self.err("`<` not allowed in attribute value")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.bump();
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut element = XmlElement::new(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    if element.get_attr(&attr_name).is_some() {
                        return Err(self.err(format!("duplicate attribute `{attr_name}`")));
                    }
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    element.attrs.push((attr_name, value));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content.
        loop {
            if self.eat("<![CDATA[") {
                let start = self.pos;
                while !self.starts_with("]]>") {
                    if self.bump().is_none() {
                        return Err(self.err("unterminated CDATA section"));
                    }
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?
                    .to_owned();
                self.expect("]]>")?;
                element.children.push(XmlNode::Text(text));
            } else if self.skip_comment()? {
                // skipped
            } else if self.starts_with("</") {
                self.expect("</")?;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(format!("mismatched close tag `{close}`, expected `{name}`")));
                }
                self.skip_ws();
                self.expect(">")?;
                return Ok(element);
            } else if self.starts_with("<") {
                let child = self.parse_element()?;
                element.children.push(XmlNode::Element(child));
            } else if self.at_end() {
                return Err(self.err(format!("unterminated element `{name}`")));
            } else {
                let mut text = String::new();
                loop {
                    match self.peek() {
                        None | Some(b'<') => break,
                        Some(b'&') => {
                            self.bump();
                            text.push(self.parse_entity()?);
                        }
                        Some(_) => {
                            let start = self.pos;
                            while let Some(b) = self.peek() {
                                if b == b'<' || b == b'&' {
                                    break;
                                }
                                self.bump();
                            }
                            text.push_str(
                                std::str::from_utf8(&self.bytes[start..self.pos])
                                    .map_err(|_| self.err("invalid utf-8"))?,
                            );
                        }
                    }
                }
                // Whitespace-only runs between elements are formatting, not
                // data; dropping them makes write→parse a round-trip.
                if !text.trim().is_empty() {
                    element.children.push(XmlNode::Text(text));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_attrs() {
        let doc = r#"<?xml version="1.0"?>
            <!-- model file -->
            <Model name="CSEV">
              <System kind='plain'>
                <Block name="Add" type="Sum" signs="+-"/>
              </System>
            </Model>"#;
        let root = parse_document(doc).unwrap();
        assert_eq!(root.name, "Model");
        assert_eq!(root.get_attr("name"), Some("CSEV"));
        let system = root.find("System").unwrap();
        assert_eq!(system.get_attr("kind"), Some("plain"));
        let block = system.find("Block").unwrap();
        assert_eq!(block.get_attr("signs"), Some("+-"));
    }

    #[test]
    fn decodes_entities() {
        let root = parse_document("<a t=\"&lt;&amp;&quot;&#65;&#x42;\">x &gt; y</a>").unwrap();
        assert_eq!(root.get_attr("t"), Some("<&\"AB"));
        assert_eq!(root.text_content(), "x > y");
    }

    #[test]
    fn cdata_is_verbatim() {
        let root = parse_document("<a><![CDATA[if (x < 1 && y > 2)]]></a>").unwrap();
        assert_eq!(root.text_content(), "if (x < 1 && y > 2)");
    }

    #[test]
    fn comments_inside_content_skipped() {
        let root = parse_document("<a><!-- c --><b/><!-- d --></a>").unwrap();
        assert_eq!(root.elements().count(), 1);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(err.detail.contains("mismatched"));
        assert_eq!(err.pos.line, 1);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(parse_document("<a x=\"1\" x=\"2\"/>").unwrap_err().detail.contains("duplicate"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_document("<a/><b/>").unwrap_err().detail.contains("trailing"));
    }

    #[test]
    fn unterminated_constructs_rejected() {
        for bad in ["<a", "<a>", "<a x=\"1/>", "<a><!-- ", "<a>&unknown;</a>", "<a>&#xZZ;</a>"] {
            assert!(parse_document(bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn error_positions_track_lines() {
        let err = parse_document("<a>\n\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(err.pos.line, 3);
    }

    #[test]
    fn writer_roundtrips() {
        let el = XmlElement::new("Model")
            .attr("name", "M<&\"")
            .child(XmlElement::new("Block").attr("type", "Sum").attr("signs", "+-"))
            .child(XmlElement::new("Note").text("a < b & c"));
        let doc = el.to_document();
        let back = parse_document(&doc).unwrap();
        assert_eq!(back.get_attr("name"), Some("M<&\""));
        assert_eq!(back.find("Note").unwrap().text_content(), "a < b & c");
        assert_eq!(back.find("Block").unwrap().get_attr("signs"), Some("+-"));
    }

    #[test]
    fn self_closing_inside_document() {
        let root = parse_document("<a><b/><b x=\"2\"/></a>").unwrap();
        assert_eq!(root.elements_named("b").count(), 2);
        assert_eq!(root.elements_named("b").nth(1).unwrap().get_attr("x"), Some("2"));
    }

    #[test]
    fn names_cannot_start_with_digit() {
        assert!(parse_document("<1a/>").is_err());
    }

    #[test]
    fn whitespace_only_text_dropped_from_empty_elements() {
        let root = parse_document("<a>   \n   </a>").unwrap();
        assert_eq!(root.text_content(), "");
    }
}
