//! # accmos-parse
//!
//! Model file parsing for AccMoS-RS: a from-scratch [`xml`] parser/writer
//! and the [MDLX](crate::mdlx) Simulink-like model format built on it.
//!
//! The paper's *Model Preprocessing* step (§3.1) consumes a model file made
//! of an actor part and a relationship part; [`parse_mdlx`] reads such a
//! file into an [`accmos_ir::Model`], and [`write_mdlx`] serializes one
//! back, round-tripping every actor template in the library.
//!
//! ## Example
//!
//! ```
//! let doc = r#"<Model name="M"><System kind="plain">
//!   <Block name="In"  type="Inport"  index="0" dtype="int32"/>
//!   <Block name="Out" type="Outport" index="0" dtype="int32"/>
//!   <Line src="In:0" dst="Out:0"/>
//! </System></Model>"#;
//! let model = accmos_parse::parse_mdlx(doc)?;
//! let text = accmos_parse::write_mdlx(&model);
//! assert_eq!(accmos_parse::parse_mdlx(&text)?, model);
//! # Ok::<(), accmos_parse::MdlxError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mdlx;
pub mod xml;

pub use mdlx::{parse_mdlx, write_mdlx, MdlxError};
