//! MDLX — the AccMoS-RS model file format.
//!
//! MDLX mirrors the two-part structure of Simulink model files the paper's
//! preprocessing step consumes (§3.1): each `<System>` holds the *actor
//! part* (`<Block>` elements with the actor's name, type, calculation
//! operator and port configuration, stored with default signal types) and
//! the *relationship part* (`<Line src="A:0" dst="B:1"/>` elements
//! recording all data-flow directions).
//!
//! ```xml
//! <?xml version="1.0"?>
//! <Model name="Sample">
//!   <System kind="plain">
//!     <Block name="A" type="Inport" index="0" dtype="int32"/>
//!     <Block name="Minus" type="Sum" signs="+-" dtype="int32"/>
//!     <Block name="Out" type="Outport" index="0" dtype="int32"/>
//!     <Line src="A:0" dst="Minus:0"/>
//!     ...
//!   </System>
//! </Model>
//! ```

use crate::xml::{parse_document, XmlElement, XmlError};
use accmos_ir::{
    Actor, ActorKind, BitOp, DataType, Line, LogicOp, LookupMethod, MathOp, MinMaxOp, Model,
    ModelError, PortRef, RelOp, RoundOp, Scalar, ShiftDir, SwitchCriteria, System, SystemKind,
    TrigOp, Value,
};
use std::fmt;

/// Error raised while reading an MDLX document.
#[derive(Debug)]
pub enum MdlxError {
    /// The document is not well-formed XML.
    Xml(XmlError),
    /// The model violated a structural rule during validation.
    Model(ModelError),
    /// The XML is well-formed but does not follow the MDLX schema.
    Schema {
        /// The offending element or attribute context.
        context: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for MdlxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdlxError::Xml(e) => write!(f, "{e}"),
            MdlxError::Model(e) => write!(f, "{e}"),
            MdlxError::Schema { context, detail } => {
                write!(f, "mdlx schema error in {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for MdlxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MdlxError::Xml(e) => Some(e),
            MdlxError::Model(e) => Some(e),
            MdlxError::Schema { .. } => None,
        }
    }
}

impl From<XmlError> for MdlxError {
    fn from(e: XmlError) -> Self {
        MdlxError::Xml(e)
    }
}

impl From<ModelError> for MdlxError {
    fn from(e: ModelError) -> Self {
        MdlxError::Model(e)
    }
}

fn schema(context: &str, detail: impl Into<String>) -> MdlxError {
    MdlxError::Schema { context: context.to_owned(), detail: detail.into() }
}

/// Parse an MDLX document into a validated [`Model`].
///
/// # Errors
///
/// Returns [`MdlxError::Xml`] on malformed XML, [`MdlxError::Schema`] on
/// unknown block types or bad attributes, and [`MdlxError::Model`] when the
/// assembled model fails structural validation.
///
/// # Examples
///
/// ```
/// let doc = r#"<Model name="M"><System kind="plain">
///   <Block name="In" type="Inport" index="0" dtype="int32"/>
///   <Block name="Out" type="Outport" index="0" dtype="int32"/>
///   <Line src="In:0" dst="Out:0"/>
/// </System></Model>"#;
/// let model = accmos_parse::parse_mdlx(doc)?;
/// assert_eq!(model.name, "M");
/// # Ok::<(), accmos_parse::MdlxError>(())
/// ```
pub fn parse_mdlx(text: &str) -> Result<Model, MdlxError> {
    let root = parse_document(text)?;
    if root.name != "Model" {
        return Err(schema(&root.name, "root element must be <Model>"));
    }
    let name = root
        .get_attr("name")
        .ok_or_else(|| schema("Model", "missing `name` attribute"))?
        .to_owned();
    let system_el =
        root.find("System").ok_or_else(|| schema("Model", "missing <System> child"))?;
    let system = parse_system(system_el)?;
    let model = Model::new(name, system);
    model.validate()?;
    Ok(model)
}

/// Serialize a [`Model`] to an MDLX document.
pub fn write_mdlx(model: &Model) -> String {
    let mut root = XmlElement::new("Model").attr("name", &model.name);
    root = root.child(system_to_xml(&model.root));
    root.to_document()
}

fn parse_system(el: &XmlElement) -> Result<System, MdlxError> {
    let kind = match el.get_attr("kind") {
        None => SystemKind::Plain,
        Some(k) => SystemKind::parse(k)
            .ok_or_else(|| schema("System", format!("unknown system kind `{k}`")))?,
    };
    let mut system = System { kind, ..System::default() };
    for child in el.elements() {
        match child.name.as_str() {
            "Block" => system.blocks.push(parse_block(child)?),
            "Line" => system.lines.push(parse_line(child)?),
            other => return Err(schema("System", format!("unexpected element <{other}>"))),
        }
    }
    Ok(system)
}

fn parse_line(el: &XmlElement) -> Result<Line, MdlxError> {
    let parse_ref = |attr: &str| -> Result<PortRef, MdlxError> {
        let raw = el.get_attr(attr).ok_or_else(|| schema("Line", format!("missing `{attr}`")))?;
        let (block, port) = raw
            .rsplit_once(':')
            .ok_or_else(|| schema("Line", format!("`{raw}` must be `Block:port`")))?;
        let port: usize =
            port.parse().map_err(|_| schema("Line", format!("bad port in `{raw}`")))?;
        Ok(PortRef::new(block, port))
    };
    Ok(Line { src: parse_ref("src")?, dst: parse_ref("dst")? })
}

fn system_to_xml(system: &System) -> XmlElement {
    let mut el = XmlElement::new("System").attr("kind", system.kind.name());
    for block in &system.blocks {
        el = el.child(block_to_xml(block));
    }
    for line in &system.lines {
        el = el.child(
            XmlElement::new("Line")
                .attr("src", format!("{}:{}", line.src.block, line.src.port))
                .attr("dst", format!("{}:{}", line.dst.block, line.dst.port)),
        );
    }
    el
}

fn block_to_xml(block: &accmos_ir::Block) -> XmlElement {
    match &block.body {
        accmos_ir::BlockBody::Subsystem(s) => XmlElement::new("Block")
            .attr("name", &block.name)
            .attr("type", "Subsystem")
            .child(system_to_xml(s)),
        accmos_ir::BlockBody::Actor(actor) => {
            let mut el = XmlElement::new("Block")
                .attr("name", &block.name)
                .attr("type", actor.kind.type_name());
            el = actor_attrs(&actor.kind, el);
            if let Some(dt) = actor.dtype {
                el = el.attr("dtype", dt.simulink_name());
            }
            if let Some(w) = actor.width {
                el = el.attr("width", w);
            }
            if actor.monitor {
                el = el.attr("monitor", "true");
            }
            el
        }
    }
}

// ---------------------------------------------------------------------------
// scalar / list helpers
// ---------------------------------------------------------------------------

fn fmt_scalar(s: Scalar) -> String {
    match s {
        Scalar::F32(v) => format!("{}:{v:?}", s.dtype().mnemonic()),
        Scalar::F64(v) => format!("{}:{v:?}", s.dtype().mnemonic()),
        other => format!("{}:{other}", other.dtype().mnemonic()),
    }
}

fn parse_scalar(text: &str, context: &str) -> Result<Scalar, MdlxError> {
    let (dt, lit) = text
        .split_once(':')
        .ok_or_else(|| schema(context, format!("scalar `{text}` must be `dtype:value`")))?;
    let dtype: DataType =
        dt.parse().map_err(|_| schema(context, format!("unknown dtype `{dt}`")))?;
    Scalar::parse(dtype, lit).map_err(|e| schema(context, e))
}

fn fmt_value(v: &Value) -> String {
    let body: Vec<String> = v
        .elems()
        .iter()
        .map(|s| match s {
            Scalar::F32(x) => format!("{x:?}"),
            Scalar::F64(x) => format!("{x:?}"),
            other => other.to_string(),
        })
        .collect();
    format!("{}:{}", v.dtype().mnemonic(), body.join(","))
}

fn parse_value(text: &str, context: &str) -> Result<Value, MdlxError> {
    let (dt, body) = text
        .split_once(':')
        .ok_or_else(|| schema(context, format!("value `{text}` must be `dtype:v[,v...]`")))?;
    let dtype: DataType =
        dt.parse().map_err(|_| schema(context, format!("unknown dtype `{dt}`")))?;
    let elems: Result<Vec<Scalar>, _> =
        body.split(',').map(|lit| Scalar::parse(dtype, lit)).collect();
    let elems = elems.map_err(|e| schema(context, e))?;
    if elems.is_empty() {
        return Err(schema(context, "empty value"));
    }
    Ok(if elems.len() == 1 { Value::scalar(elems[0]) } else { Value::vector(elems) })
}

fn fmt_f64_list(list: &[f64]) -> String {
    list.iter().map(|v| format!("{v:?}")).collect::<Vec<_>>().join(",")
}

fn parse_f64_list(text: &str, context: &str) -> Result<Vec<f64>, MdlxError> {
    text.split(',')
        .map(|t| t.trim().parse::<f64>().map_err(|_| schema(context, format!("bad number `{t}`"))))
        .collect()
}

fn parse_usize_list(text: &str, context: &str) -> Result<Vec<usize>, MdlxError> {
    text.split(',')
        .map(|t| t.trim().parse::<usize>().map_err(|_| schema(context, format!("bad index `{t}`"))))
        .collect()
}

struct Attrs<'a> {
    el: &'a XmlElement,
    context: String,
}

impl<'a> Attrs<'a> {
    fn req(&self, name: &str) -> Result<&'a str, MdlxError> {
        self.el
            .get_attr(name)
            .ok_or_else(|| schema(&self.context, format!("missing attribute `{name}`")))
    }

    fn num<T: std::str::FromStr>(&self, name: &str) -> Result<T, MdlxError> {
        self.req(name)?
            .parse()
            .map_err(|_| schema(&self.context, format!("bad numeric attribute `{name}`")))
    }

    fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, MdlxError> {
        match self.el.get_attr(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| schema(&self.context, format!("bad numeric attribute `{name}`")))
            }
        }
    }

    fn scalar(&self, name: &str) -> Result<Scalar, MdlxError> {
        parse_scalar(self.req(name)?, &self.context)
    }

    fn scalar_or(&self, name: &str, default: Scalar) -> Result<Scalar, MdlxError> {
        match self.el.get_attr(name) {
            None => Ok(default),
            Some(v) => parse_scalar(v, &self.context),
        }
    }

    fn flag(&self, name: &str) -> Result<bool, MdlxError> {
        match self.el.get_attr(name) {
            None => Ok(false),
            Some("true" | "1") => Ok(true),
            Some("false" | "0") => Ok(false),
            Some(v) => Err(schema(&self.context, format!("bad boolean `{name}=\"{v}\"`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// per-kind encode / decode
// ---------------------------------------------------------------------------

fn actor_attrs(kind: &ActorKind, el: XmlElement) -> XmlElement {
    use ActorKind::*;
    match kind {
        Inport { index } | Outport { index } => el.attr("index", index),
        Constant { value } => el.attr("value", fmt_value(value)),
        Step { time, before, after } => el
            .attr("time", time)
            .attr("before", fmt_scalar(*before))
            .attr("after", fmt_scalar(*after)),
        Ramp { slope, start, initial } => el
            .attr("slope", format!("{slope:?}"))
            .attr("start", start)
            .attr("initial", format!("{initial:?}")),
        SineWave { amplitude, freq, phase, bias } => el
            .attr("amplitude", format!("{amplitude:?}"))
            .attr("freq", format!("{freq:?}"))
            .attr("phase", format!("{phase:?}"))
            .attr("bias", format!("{bias:?}")),
        PulseGenerator { period, duty, amplitude } => el
            .attr("period", period)
            .attr("duty", duty)
            .attr("amplitude", fmt_scalar(*amplitude)),
        Clock | Ground | Abs | Sign | Sqrt | DotProduct | SumOfElements | ProductOfElements
        | DiscreteDerivative | Scope | Display | Terminator => el,
        Counter { limit } => el.attr("limit", limit),
        RandomNumber { seed } => el.attr("seed", seed),
        Sum { signs } => el.attr("signs", signs),
        Product { ops } => el.attr("ops", ops),
        Gain { gain } => el.attr("gain", fmt_scalar(*gain)),
        Bias { bias } => el.attr("bias", fmt_scalar(*bias)),
        Math { op } => el.attr("op", op.name()),
        Trig { op } => el.attr("op", op.name()),
        MinMax { op, inputs } => el
            .attr("op", if *op == MinMaxOp::Min { "min" } else { "max" })
            .attr("inputs", inputs),
        Rounding { op } => el.attr("op", op.name()),
        Polynomial { coeffs } => el.attr("coeffs", fmt_f64_list(coeffs)),
        Relational { op } => el.attr("op", op.c_symbol()),
        Logical { op, inputs } => el.attr("op", op.name()).attr("inputs", inputs),
        CompareToConstant { op, constant } => {
            el.attr("op", op.c_symbol()).attr("constant", fmt_scalar(*constant))
        }
        Bitwise { op } => el.attr("op", op.name()),
        Shift { dir, amount } => el
            .attr("dir", if *dir == ShiftDir::Left { "left" } else { "right" })
            .attr("amount", amount),
        Switch { criteria } => {
            let el = el.attr("criteria", criteria.name());
            match criteria.threshold() {
                Some(t) => el.attr("threshold", format!("{t:?}")),
                None => el,
            }
        }
        MultiportSwitch { cases } => el.attr("cases", cases),
        Merge { inputs } => el.attr("inputs", inputs),
        Saturation { lo, hi } => el.attr("lo", format!("{lo:?}")).attr("hi", format!("{hi:?}")),
        DeadZone { start, end } => {
            el.attr("start", format!("{start:?}")).attr("end", format!("{end:?}"))
        }
        RateLimiter { rising, falling } => el
            .attr("rising", format!("{rising:?}"))
            .attr("falling", format!("{falling:?}")),
        Quantizer { interval } => el.attr("interval", format!("{interval:?}")),
        Relay { on_threshold, off_threshold, on_value, off_value } => el
            .attr("on", format!("{on_threshold:?}"))
            .attr("off", format!("{off_threshold:?}"))
            .attr("on_value", format!("{on_value:?}"))
            .attr("off_value", format!("{off_value:?}")),
        UnitDelay { init } | Memory { init } => el.attr("init", fmt_scalar(*init)),
        Delay { steps, init } => el.attr("steps", steps).attr("init", fmt_scalar(*init)),
        DiscreteIntegrator { gain, init } => {
            el.attr("gain", format!("{gain:?}")).attr("init", fmt_scalar(*init))
        }
        ZeroOrderHold { sample } => el.attr("sample", sample),
        EdgeDetector { rising, falling } => {
            el.attr("rising", rising).attr("falling", falling)
        }
        Mux { inputs } => el.attr("inputs", inputs),
        Demux { outputs } => el.attr("outputs", outputs),
        Selector { indices, dynamic } => {
            let list =
                indices.iter().map(ToString::to_string).collect::<Vec<_>>().join(",");
            el.attr("indices", list).attr("dynamic", dynamic)
        }
        DataTypeConversion { to } => el.attr("to", to.simulink_name()),
        Lookup1D { breakpoints, table, method } => el
            .attr("breakpoints", fmt_f64_list(breakpoints))
            .attr("table", fmt_f64_list(table))
            .attr("method", method.name()),
        Lookup2D { row_bps, col_bps, table, method } => el
            .attr("row_bps", fmt_f64_list(row_bps))
            .attr("col_bps", fmt_f64_list(col_bps))
            .attr("table", fmt_f64_list(table))
            .attr("method", method.name()),
        DataStoreMemory { store, init } => el.attr("store", store).attr("init", fmt_scalar(*init)),
        DataStoreRead { store } | DataStoreWrite { store } => el.attr("store", store),
        ToWorkspace { var } => el.attr("var", var),
    }
}

fn parse_block(el: &XmlElement) -> Result<accmos_ir::Block, MdlxError> {
    let name =
        el.get_attr("name").ok_or_else(|| schema("Block", "missing `name`"))?.to_owned();
    let ty = el
        .get_attr("type")
        .ok_or_else(|| schema(&format!("Block `{name}`"), "missing `type`"))?;
    if ty == "Subsystem" {
        // Nested <System> or inline blocks/lines.
        let inner = if let Some(system_el) = el.find("System") {
            parse_system(system_el)?
        } else {
            let kind = match el.get_attr("kind") {
                None => SystemKind::Plain,
                Some(k) => SystemKind::parse(k)
                    .ok_or_else(|| schema(&format!("Block `{name}`"), "unknown subsystem kind"))?,
            };
            let mut system = System { kind, ..System::default() };
            for child in el.elements() {
                match child.name.as_str() {
                    "Block" => system.blocks.push(parse_block(child)?),
                    "Line" => system.lines.push(parse_line(child)?),
                    other => {
                        return Err(schema(
                            &format!("Block `{name}`"),
                            format!("unexpected element <{other}>"),
                        ))
                    }
                }
            }
            system
        };
        return Ok(accmos_ir::Block { name, body: accmos_ir::BlockBody::Subsystem(inner) });
    }

    let context = format!("Block `{name}` ({ty})");
    let a = Attrs { el, context: context.clone() };
    let kind = parse_kind(ty, &a)?;
    let mut actor = Actor::new(kind);
    if let Some(dt) = el.get_attr("dtype") {
        actor.dtype =
            Some(dt.parse().map_err(|_| schema(&context, format!("unknown dtype `{dt}`")))?);
    }
    if let Some(w) = el.get_attr("width") {
        actor.width =
            Some(w.parse().map_err(|_| schema(&context, format!("bad width `{w}`")))?);
    }
    actor.monitor = a.flag("monitor")?;
    Ok(accmos_ir::Block { name, body: accmos_ir::BlockBody::Actor(actor) })
}

fn parse_kind(ty: &str, a: &Attrs<'_>) -> Result<ActorKind, MdlxError> {
    use ActorKind::*;
    let ctx = a.context.clone();
    let kind = match ty {
        "Inport" => Inport { index: a.num("index")? },
        "Outport" => Outport { index: a.num("index")? },
        "Constant" => Constant { value: parse_value(a.req("value")?, &ctx)? },
        "Step" => Step {
            time: a.num("time")?,
            before: a.scalar("before")?,
            after: a.scalar("after")?,
        },
        "Ramp" => Ramp {
            slope: a.num("slope")?,
            start: a.num_or("start", 0u64)?,
            initial: a.num_or("initial", 0.0f64)?,
        },
        "SineWave" => SineWave {
            amplitude: a.num_or("amplitude", 1.0f64)?,
            freq: a.num("freq")?,
            phase: a.num_or("phase", 0.0f64)?,
            bias: a.num_or("bias", 0.0f64)?,
        },
        "PulseGenerator" => PulseGenerator {
            period: a.num("period")?,
            duty: a.num("duty")?,
            amplitude: a.scalar_or("amplitude", Scalar::F64(1.0))?,
        },
        "Clock" => Clock,
        "Counter" => Counter { limit: a.num("limit")? },
        "RandomNumber" => RandomNumber { seed: a.num_or("seed", 0u64)? },
        "Ground" => Ground,
        "Sum" => Sum { signs: a.req("signs")?.to_owned() },
        "Product" => Product { ops: a.req("ops")?.to_owned() },
        "Gain" => Gain { gain: a.scalar("gain")? },
        "Bias" => Bias { bias: a.scalar("bias")? },
        "Abs" => Abs,
        "Sign" => Sign,
        "Sqrt" => Sqrt,
        "Math" => Math {
            op: MathOp::parse(a.req("op")?)
                .ok_or_else(|| schema(&ctx, "unknown math op"))?,
        },
        "Trig" => Trig {
            op: TrigOp::parse(a.req("op")?)
                .ok_or_else(|| schema(&ctx, "unknown trig op"))?,
        },
        "MinMax" => MinMax {
            op: match a.req("op")? {
                "min" => MinMaxOp::Min,
                "max" => MinMaxOp::Max,
                other => return Err(schema(&ctx, format!("unknown minmax op `{other}`"))),
            },
            inputs: a.num("inputs")?,
        },
        "Rounding" => Rounding {
            op: RoundOp::parse(a.req("op")?)
                .ok_or_else(|| schema(&ctx, "unknown rounding op"))?,
        },
        "Polynomial" => Polynomial { coeffs: parse_f64_list(a.req("coeffs")?, &ctx)? },
        "DotProduct" => DotProduct,
        "SumOfElements" => SumOfElements,
        "ProductOfElements" => ProductOfElements,
        "Relational" => Relational {
            op: RelOp::parse(a.req("op")?)
                .ok_or_else(|| schema(&ctx, "unknown relational op"))?,
        },
        "Logical" => Logical {
            op: LogicOp::parse(a.req("op")?)
                .ok_or_else(|| schema(&ctx, "unknown logical op"))?,
            inputs: a.num_or("inputs", 1usize)?,
        },
        "CompareToConstant" => CompareToConstant {
            op: RelOp::parse(a.req("op")?)
                .ok_or_else(|| schema(&ctx, "unknown relational op"))?,
            constant: a.scalar("constant")?,
        },
        "Bitwise" => Bitwise {
            op: BitOp::parse(a.req("op")?)
                .ok_or_else(|| schema(&ctx, "unknown bitwise op"))?,
        },
        "Shift" => Shift {
            dir: match a.req("dir")? {
                "left" => ShiftDir::Left,
                "right" => ShiftDir::Right,
                other => return Err(schema(&ctx, format!("unknown shift dir `{other}`"))),
            },
            amount: a.num("amount")?,
        },
        "Switch" => {
            let criteria = match a.req("criteria")? {
                ">=" => SwitchCriteria::GreaterEqual(a.num("threshold")?),
                ">" => SwitchCriteria::Greater(a.num("threshold")?),
                "~=0" => SwitchCriteria::NotEqualZero,
                other => return Err(schema(&ctx, format!("unknown switch criteria `{other}`"))),
            };
            Switch { criteria }
        }
        "MultiportSwitch" => MultiportSwitch { cases: a.num("cases")? },
        "Merge" => Merge { inputs: a.num("inputs")? },
        "Saturation" => Saturation { lo: a.num("lo")?, hi: a.num("hi")? },
        "DeadZone" => DeadZone { start: a.num("start")?, end: a.num("end")? },
        "RateLimiter" => RateLimiter { rising: a.num("rising")?, falling: a.num("falling")? },
        "Quantizer" => Quantizer { interval: a.num("interval")? },
        "Relay" => Relay {
            on_threshold: a.num("on")?,
            off_threshold: a.num("off")?,
            on_value: a.num("on_value")?,
            off_value: a.num("off_value")?,
        },
        "UnitDelay" => UnitDelay { init: a.scalar("init")? },
        "Delay" => Delay { steps: a.num("steps")?, init: a.scalar("init")? },
        "Memory" => Memory { init: a.scalar("init")? },
        "DiscreteIntegrator" => DiscreteIntegrator {
            gain: a.num_or("gain", 1.0f64)?,
            init: a.scalar("init")?,
        },
        "DiscreteDerivative" => DiscreteDerivative,
        "ZeroOrderHold" => ZeroOrderHold { sample: a.num("sample")? },
        "EdgeDetector" => EdgeDetector { rising: a.flag("rising")?, falling: a.flag("falling")? },
        "Mux" => Mux { inputs: a.num("inputs")? },
        "Demux" => Demux { outputs: a.num("outputs")? },
        "Selector" => Selector {
            indices: parse_usize_list(a.req("indices")?, &ctx)?,
            dynamic: a.flag("dynamic")?,
        },
        "DataTypeConversion" => DataTypeConversion {
            to: a
                .req("to")?
                .parse()
                .map_err(|_| schema(&ctx, "unknown target dtype"))?,
        },
        "Lookup1D" => Lookup1D {
            breakpoints: parse_f64_list(a.req("breakpoints")?, &ctx)?,
            table: parse_f64_list(a.req("table")?, &ctx)?,
            method: LookupMethod::parse(a.req("method")?)
                .ok_or_else(|| schema(&ctx, "unknown lookup method"))?,
        },
        "Lookup2D" => Lookup2D {
            row_bps: parse_f64_list(a.req("row_bps")?, &ctx)?,
            col_bps: parse_f64_list(a.req("col_bps")?, &ctx)?,
            table: parse_f64_list(a.req("table")?, &ctx)?,
            method: LookupMethod::parse(a.req("method")?)
                .ok_or_else(|| schema(&ctx, "unknown lookup method"))?,
        },
        "DataStoreMemory" => DataStoreMemory {
            store: a.req("store")?.to_owned(),
            init: a.scalar("init")?,
        },
        "DataStoreRead" => DataStoreRead { store: a.req("store")?.to_owned() },
        "DataStoreWrite" => DataStoreWrite { store: a.req("store")?.to_owned() },
        "Scope" => Scope,
        "Display" => Display,
        "ToWorkspace" => ToWorkspace { var: a.req("var")?.to_owned() },
        "Terminator" => Terminator,
        other => return Err(schema(&ctx, format!("unknown block type `{other}`"))),
    };
    Ok(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accmos_ir::ModelBuilder;

    fn roundtrip(model: &Model) -> Model {
        let doc = write_mdlx(model);
        parse_mdlx(&doc).unwrap_or_else(|e| panic!("roundtrip failed: {e}\n{doc}"))
    }

    #[test]
    fn simple_model_roundtrips() {
        let mut b = ModelBuilder::new("M");
        b.inport("In", DataType::I32);
        b.actor("Neg", ActorKind::Gain { gain: Scalar::I32(-1) });
        b.outport("Out", DataType::I32);
        b.wire("In", "Neg");
        b.wire("Neg", "Out");
        let model = b.build().unwrap();
        assert_eq!(roundtrip(&model), model);
    }

    #[test]
    fn every_actor_kind_roundtrips() {
        // One block of each parametrised kind, no lines (build_unchecked).
        use ActorKind::*;
        let kinds: Vec<ActorKind> = vec![
            Inport { index: 0 },
            Constant { value: Value::vector(vec![Scalar::F32(1.5), Scalar::F32(-2.0)]) },
            Step { time: 5, before: Scalar::I16(0), after: Scalar::I16(3) },
            Ramp { slope: 0.25, start: 2, initial: -1.0 },
            SineWave { amplitude: 2.0, freq: 0.1, phase: 0.5, bias: 1.0 },
            PulseGenerator { period: 10, duty: 4, amplitude: Scalar::U8(1) },
            Clock,
            Counter { limit: 99 },
            RandomNumber { seed: 1234 },
            Ground,
            Sum { signs: "++-".into() },
            Product { ops: "*/".into() },
            Gain { gain: Scalar::F64(2.5) },
            Bias { bias: Scalar::I32(-3) },
            Abs,
            Sign,
            Sqrt,
            Math { op: MathOp::Hypot },
            Trig { op: TrigOp::Atan2 },
            MinMax { op: MinMaxOp::Max, inputs: 3 },
            Rounding { op: RoundOp::Fix },
            Polynomial { coeffs: vec![1.0, -0.5, 0.25] },
            DotProduct,
            SumOfElements,
            ProductOfElements,
            Relational { op: RelOp::Ge },
            Logical { op: LogicOp::Nand, inputs: 3 },
            CompareToConstant { op: RelOp::Ne, constant: Scalar::I64(7) },
            Bitwise { op: BitOp::Not },
            Shift { dir: ShiftDir::Right, amount: 3 },
            Switch { criteria: SwitchCriteria::GreaterEqual(0.5) },
            Switch { criteria: SwitchCriteria::NotEqualZero },
            MultiportSwitch { cases: 4 },
            Merge { inputs: 2 },
            Saturation { lo: -2.0, hi: 2.0 },
            DeadZone { start: -0.1, end: 0.1 },
            RateLimiter { rising: 0.5, falling: -0.5 },
            Quantizer { interval: 0.25 },
            Relay { on_threshold: 1.0, off_threshold: -1.0, on_value: 5.0, off_value: 0.0 },
            UnitDelay { init: Scalar::U32(9) },
            Delay { steps: 3, init: Scalar::F32(0.5) },
            Memory { init: Scalar::Bool(true) },
            DiscreteIntegrator { gain: 0.5, init: Scalar::F64(1.0) },
            DiscreteDerivative,
            ZeroOrderHold { sample: 4 },
            EdgeDetector { rising: true, falling: true },
            Mux { inputs: 3 },
            Demux { outputs: 2 },
            Selector { indices: vec![0, 2, 4], dynamic: true },
            DataTypeConversion { to: DataType::I8 },
            Lookup1D {
                breakpoints: vec![0.0, 1.0, 2.0],
                table: vec![1.0, 4.0, 9.0],
                method: LookupMethod::Interpolate,
            },
            Lookup2D {
                row_bps: vec![0.0, 1.0],
                col_bps: vec![0.0, 1.0, 2.0],
                table: vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
                method: LookupMethod::Below,
            },
            DataStoreMemory { store: "quantity".into(), init: Scalar::I32(0) },
            DataStoreRead { store: "quantity".into() },
            DataStoreWrite { store: "quantity".into() },
            Outport { index: 0 },
            Scope,
            Display,
            ToWorkspace { var: "log".into() },
            Terminator,
        ];
        let mut b = ModelBuilder::new("All");
        for (i, kind) in kinds.iter().enumerate() {
            b.actor(&format!("B{i}"), Actor::new(kind.clone()).with_dtype(DataType::F64));
        }
        let model = b.build_unchecked();
        let doc = write_mdlx(&model);
        let back = parse_mdlx_unvalidated(&doc);
        assert_eq!(back, model);
    }

    fn parse_mdlx_unvalidated(text: &str) -> Model {
        let root = parse_document(text).unwrap();
        let name = root.get_attr("name").unwrap().to_owned();
        let system = parse_system(root.find("System").unwrap()).unwrap();
        Model::new(name, system)
    }

    #[test]
    fn subsystem_roundtrips() {
        let mut b = ModelBuilder::new("M");
        b.inport("X", DataType::F64);
        b.constant("En", Scalar::Bool(true));
        b.subsystem("Sub", SystemKind::Enabled, |s| {
            s.inport("u", DataType::F64);
            s.actor("Twice", ActorKind::Gain { gain: Scalar::F64(2.0) });
            s.outport("y", DataType::F64);
            s.wire("u", "Twice");
            s.wire("Twice", "y");
        });
        b.outport("Y", DataType::F64);
        b.wire("X", "Sub");
        b.wire_to("En", "Sub", 1);
        b.wire("Sub", "Y");
        let model = b.build().unwrap();
        assert_eq!(roundtrip(&model), model);
    }

    #[test]
    fn monitor_and_width_attrs_roundtrip() {
        let mut b = ModelBuilder::new("M");
        b.inport("In", DataType::F32);
        b.actor(
            "Abs",
            Actor::new(ActorKind::Abs).with_dtype(DataType::F32).with_width(4).monitored(),
        );
        b.wire("In", "Abs");
        let model = b.build_unchecked();
        let doc = write_mdlx(&model);
        let back = parse_mdlx_unvalidated(&doc);
        assert_eq!(back, model);
    }

    #[test]
    fn unknown_block_type_rejected() {
        let doc = r#"<Model name="M"><System kind="plain">
            <Block name="X" type="FluxCapacitor"/>
        </System></Model>"#;
        let err = parse_mdlx(doc).unwrap_err();
        assert!(matches!(err, MdlxError::Schema { .. }), "{err}");
        assert!(err.to_string().contains("FluxCapacitor"));
    }

    #[test]
    fn missing_attribute_reported_with_context() {
        let doc = r#"<Model name="M"><System kind="plain">
            <Block name="S" type="Sum"/>
        </System></Model>"#;
        let err = parse_mdlx(doc).unwrap_err().to_string();
        assert!(err.contains("signs") && err.contains("`S`"), "{err}");
    }

    #[test]
    fn validation_errors_propagate() {
        let doc = r#"<Model name="M"><System kind="plain">
            <Block name="A" type="Abs" dtype="int32"/>
        </System></Model>"#;
        let err = parse_mdlx(doc).unwrap_err();
        assert!(matches!(err, MdlxError::Model(_)), "{err}");
    }

    #[test]
    fn malformed_xml_reported() {
        assert!(matches!(parse_mdlx("<Model").unwrap_err(), MdlxError::Xml(_)));
    }

    #[test]
    fn bad_line_ref_rejected() {
        let doc = r#"<Model name="M"><System kind="plain">
            <Line src="A" dst="B:0"/>
        </System></Model>"#;
        let err = parse_mdlx(doc).unwrap_err().to_string();
        assert!(err.contains("Block:port"), "{err}");
    }

    #[test]
    fn float_params_roundtrip_exactly() {
        let slope = 0.1 + 0.2; // not exactly representable as a short decimal
        let mut b = ModelBuilder::new("M");
        b.actor("R", ActorKind::Ramp { slope, start: 0, initial: 0.0 });
        let model = b.build_unchecked();
        let back = parse_mdlx_unvalidated(&write_mdlx(&model));
        assert_eq!(back, model);
    }
}
