//! Backend errors.

use std::fmt;
use std::path::PathBuf;

/// Errors from compiling or executing a generated simulator.
#[derive(Debug)]
pub enum BackendError {
    /// No usable C compiler was found.
    CompilerNotFound {
        /// The candidates that were tried.
        tried: Vec<String>,
    },
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The compiler exited with a failure.
    CompileFailed {
        /// The compiler command line.
        command: String,
        /// Captured standard error.
        stderr: String,
    },
    /// The simulator process failed to run or crashed.
    RunFailed {
        /// The executable path.
        exe: PathBuf,
        /// Description of the failure.
        detail: String,
    },
    /// The simulator output did not follow the `ACCMOS:` protocol.
    Protocol {
        /// The offending output line.
        line: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::CompilerNotFound { tried } => {
                write!(f, "no C compiler found (tried {})", tried.join(", "))
            }
            BackendError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            BackendError::CompileFailed { command, stderr } => {
                write!(f, "compilation failed: {command}\n{stderr}")
            }
            BackendError::RunFailed { exe, detail } => {
                write!(f, "simulator {} failed: {detail}", exe.display())
            }
            BackendError::Protocol { line, detail } => {
                write!(f, "bad result line `{line}`: {detail}")
            }
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = BackendError::CompilerNotFound { tried: vec!["cc".into(), "gcc".into()] };
        assert!(e.to_string().contains("cc, gcc"));
        let e = BackendError::Protocol { line: "XYZ".into(), detail: "nope".into() };
        assert!(e.to_string().contains("XYZ"));
    }
}
