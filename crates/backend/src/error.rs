//! Backend errors.

use crate::supervise::FailureKind;
use std::fmt;
use std::path::PathBuf;

/// Errors from compiling or executing a generated simulator.
#[derive(Debug)]
pub enum BackendError {
    /// No usable C compiler was found.
    CompilerNotFound {
        /// The candidates that were tried.
        tried: Vec<String>,
    },
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The compiler exited with a failure.
    CompileFailed {
        /// The compiler command line.
        command: String,
        /// Captured standard error.
        stderr: String,
    },
    /// The simulator process failed to run or crashed.
    RunFailed {
        /// The executable path.
        exe: PathBuf,
        /// Description of the failure.
        detail: String,
    },
    /// The simulator output did not follow the `ACCMOS:` protocol.
    Protocol {
        /// The offending output line.
        line: String,
        /// What went wrong.
        detail: String,
    },
    /// A supervised run failed; carries the classified [`FailureKind`] so
    /// callers can decide retry-vs-quarantine mechanically.
    Supervised {
        /// The executable path.
        exe: PathBuf,
        /// The classified failure of the last attempt.
        kind: FailureKind,
        /// Total attempts made (1 = no retries).
        attempts: u32,
        /// Description of the last failure (signal, exit code, output
        /// tails).
        detail: String,
    },
    /// The executable has crashed too often and is refused further runs.
    Quarantined {
        /// The executable path.
        exe: PathBuf,
        /// Classified crashes recorded against it.
        crashes: u32,
    },
}

impl BackendError {
    /// The classified failure kind of a supervised run, if this error
    /// carries one.
    pub fn failure_kind(&self) -> Option<FailureKind> {
        match self {
            BackendError::Supervised { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::CompilerNotFound { tried } => {
                write!(f, "no C compiler found (tried {})", tried.join(", "))
            }
            BackendError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            BackendError::CompileFailed { command, stderr } => {
                write!(f, "compilation failed: {command}\n{stderr}")
            }
            BackendError::RunFailed { exe, detail } => {
                write!(f, "simulator {} failed: {detail}", exe.display())
            }
            BackendError::Protocol { line, detail } => {
                write!(f, "bad result line `{line}`: {detail}")
            }
            BackendError::Supervised { exe, kind, attempts, detail } => {
                write!(
                    f,
                    "simulator {} failed ({kind}) after {attempts} attempt(s): {detail}",
                    exe.display()
                )
            }
            BackendError::Quarantined { exe, crashes } => {
                write!(
                    f,
                    "simulator {} is quarantined after {crashes} crash(es)",
                    exe.display()
                )
            }
        }
    }
}

impl std::error::Error for BackendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BackendError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = BackendError::CompilerNotFound { tried: vec!["cc".into(), "gcc".into()] };
        assert!(e.to_string().contains("cc, gcc"));
        let e = BackendError::Protocol { line: "XYZ".into(), detail: "nope".into() };
        assert!(e.to_string().contains("XYZ"));
        let e = BackendError::Supervised {
            exe: "/tmp/sim".into(),
            kind: FailureKind::Crashed { signal: 11 },
            attempts: 3,
            detail: "stderr tail: <empty>".into(),
        };
        assert!(e.to_string().contains("signal 11"));
        assert!(e.to_string().contains("3 attempt(s)"));
        assert_eq!(e.failure_kind(), Some(FailureKind::Crashed { signal: 11 }));
        let e = BackendError::Quarantined { exe: "/tmp/sim".into(), crashes: 2 };
        assert!(e.to_string().contains("quarantined"));
        assert_eq!(e.failure_kind(), None);
    }
}
