//! Content-addressed cache of compiled simulator executables.
//!
//! The paper's headline claim is wall-clock acceleration, yet repeated
//! simulations of the same model pay GCC every time: harness measurements
//! show compilation (0.5–3.5 s at `-O3`) dwarfing the simulation loop
//! itself (tens of milliseconds at 100k steps). [`BuildCache`] removes
//! that cost for repeated builds: executables are stored under a key
//! derived from everything that determines the binary — the generated
//! source files, the compiler's identity (`cc --version`), the
//! optimization level and the fixed flag set — so a hit is guaranteed to
//! be byte-equivalent to what a fresh compile would produce.
//!
//! Concurrency: entries are inserted by writing to a temporary name and
//! `rename`-ing into place, which is atomic on one filesystem, so any
//! number of processes and threads can share a cache root. Lookups that
//! race an eviction simply miss and recompile. Stores and evictions are
//! additionally serialized across *processes* by a lease file (`.lock`,
//! taken with `create_new`, with stale-lease takeover), so two `accmos
//! batch` processes sharing one cache root cannot interleave an eviction
//! scan with each other's insertions.

use crate::lease::{self, LeaseGuard};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hit/miss/eviction counters of a [`BuildCache`] (shared by all clones
/// of the cache handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups satisfied from the cache (no compiler invocation).
    pub hits: u64,
    /// Lookups that fell through to a real compile.
    pub misses: u64,
    /// Entries removed to keep the cache within its size bound.
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A content-addressed store of compiled simulator executables.
///
/// Cloning the handle shares the same root directory and counters.
///
/// # Examples
///
/// ```no_run
/// use accmos_backend::{BuildCache, Compiler};
///
/// let cache = BuildCache::new();          // $XDG_CACHE_HOME/accmos or fallback
/// let cc = Compiler::detect()?.with_cache(cache.clone());
/// // ... compile the same program twice ...
/// assert_eq!(cache.stats().hits, 0);      // before any compile
/// # Ok::<(), accmos_backend::BackendError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BuildCache {
    root: PathBuf,
    max_entries: usize,
    counters: Arc<Counters>,
}

/// Name of the cached executable inside an entry directory.
const EXE_NAME: &str = "sim";
/// Name of the marker file re-written on every hit so eviction can order
/// entries by recency of *use*, not of insertion. The file's contents are
/// the monotonic hit sequence number (see [`SEQ_NAME`]); its mtime is
/// only the second-level tie-breaker, because 1-second-granularity
/// filesystems make mtimes tie between a just-refreshed entry and older
/// ones, which would leave the eviction victim arbitrary.
const STAMP_NAME: &str = "last-used";
/// Name of the root-level counter file holding the last issued hit
/// sequence number. Bumped on every lookup hit and store; the new value
/// is persisted in the touched entry's stamp so eviction has a total
/// recency order even when every mtime ties.
const SEQ_NAME: &str = ".seq";
/// Name of the cross-process lease file under the cache root.
const LOCK_NAME: &str = ".lock";

impl BuildCache {
    /// Default number of executables kept before least-recently-used
    /// entries are evicted.
    pub const DEFAULT_MAX_ENTRIES: usize = 256;

    /// A cache at the default root: `$ACCMOS_CACHE_DIR` if set, else
    /// `$XDG_CACHE_HOME/accmos`, else `$HOME/.cache/accmos`, else an
    /// `accmos-cache` directory under the system temp dir.
    pub fn new() -> BuildCache {
        BuildCache::at(default_root())
    }

    /// A cache rooted at `root` (created lazily on first store).
    pub fn at(root: impl Into<PathBuf>) -> BuildCache {
        BuildCache {
            root: root.into(),
            max_entries: Self::DEFAULT_MAX_ENTRIES,
            counters: Arc::default(),
        }
    }

    /// Builder-style: keep at most `n` entries (1 minimum).
    pub fn with_max_entries(mut self, n: usize) -> BuildCache {
        self.max_entries = n.max(1);
        self
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// Look up a compiled executable by content key, counting the outcome.
    ///
    /// Returns the path of the cached executable, which callers must copy
    /// out (entries can be evicted at any time by other handles).
    pub fn lookup(&self, key: &str) -> Option<PathBuf> {
        let exe = self.root.join(key).join(EXE_NAME);
        if exe.is_file() {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            // Refresh the entry's recency for LRU eviction; best-effort.
            self.touch(&self.root.join(key));
            Some(exe)
        } else {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Insert the executable at `exe` under `key`, then evict the
    /// least-recently-used entries beyond the size bound.
    ///
    /// Insertion is atomic (temp file + rename), so concurrent stores of
    /// the same key are safe — last writer wins with identical content.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the caller may ignore them (a failed
    /// store only costs a future recompile).
    pub fn store(&self, key: &str, exe: &Path) -> std::io::Result<()> {
        let entry = self.root.join(key);
        std::fs::create_dir_all(&entry)?;
        // Hold the cross-process lease over insert + evict so a concurrent
        // process's eviction scan never interleaves with this store.
        let _lease = self.acquire_lease();
        let tmp = entry.join(format!("sim.tmp.{}", std::process::id()));
        std::fs::copy(exe, &tmp)?; // preserves the executable bit
        std::fs::rename(&tmp, entry.join(EXE_NAME))?;
        self.touch(&entry);
        self.evict_lru();
        Ok(())
    }

    /// Mark `entry` as just-used: bump the root-level hit sequence and
    /// persist the new number in the entry's stamp file. Best-effort —
    /// a failed write only degrades eviction ordering to the mtime/key
    /// fallback. Concurrent unlocked bumps (lookup hits take no lease)
    /// may issue duplicate numbers; ties fall back to stamp mtime, then
    /// entry key, so the victim stays deterministic.
    fn touch(&self, entry: &Path) {
        let seq_path = self.root.join(SEQ_NAME);
        let next = std::fs::read_to_string(&seq_path)
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0)
            .saturating_add(1);
        let _ = std::fs::write(&seq_path, next.to_string());
        let _ = std::fs::write(entry.join(STAMP_NAME), next.to_string());
    }

    /// Take the cross-process lease file under the cache root (see
    /// [`crate::lease`] for the protocol: `create_new`, stale-lease
    /// takeover, proceed-unlocked after a bounded wait — the lock reduces
    /// cross-process races, it is not required for correctness).
    fn acquire_lease(&self) -> Option<LeaseGuard> {
        lease::acquire(&self.root.join(LOCK_NAME))
    }

    /// Remove every entry (counters are preserved).
    pub fn clear(&self) -> std::io::Result<()> {
        if self.root.exists() {
            std::fs::remove_dir_all(&self.root)?;
        }
        Ok(())
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn entries(&self) -> Vec<PathBuf> {
        let Ok(rd) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        rd.filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.join(EXE_NAME).is_file())
            .collect()
    }

    /// Whether the cross-process lease file is currently held (visible for
    /// tests and diagnostics).
    pub fn lease_held(&self) -> bool {
        self.root.join(LOCK_NAME).exists()
    }

    fn evict_lru(&self) {
        // Recency order: persisted hit sequence first (total order even
        // when a coarse-mtime filesystem ties every stamp), then stamp
        // mtime (entries from before the sequence existed), then entry
        // key, so the victim is deterministic in every case.
        let mut entries: Vec<(u64, std::time::SystemTime, PathBuf)> = self
            .entries()
            .into_iter()
            .map(|p| {
                let stamp = p.join(STAMP_NAME);
                let seq = std::fs::read_to_string(&stamp)
                    .ok()
                    .and_then(|s| s.trim().parse::<u64>().ok())
                    .unwrap_or(0);
                let used = std::fs::metadata(&stamp)
                    .or_else(|_| std::fs::metadata(&p))
                    .and_then(|m| m.modified())
                    .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                (seq, used, p)
            })
            .collect();
        if entries.len() <= self.max_entries {
            return;
        }
        entries.sort();
        let excess = entries.len() - self.max_entries;
        for (_, _, path) in entries.into_iter().take(excess) {
            if std::fs::remove_dir_all(&path).is_ok() {
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Default for BuildCache {
    fn default() -> Self {
        BuildCache::new()
    }
}

/// The default state root: `$ACCMOS_CACHE_DIR` if set, else
/// `$XDG_CACHE_HOME/accmos`, else `$HOME/.cache/accmos`, else an
/// `accmos-cache` directory under the system temp dir. Shared with the
/// run ledger and the quarantine store, which live alongside the cache.
pub(crate) fn default_root() -> PathBuf {
    if let Some(dir) = std::env::var_os("ACCMOS_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    if let Some(dir) = std::env::var_os("XDG_CACHE_HOME") {
        if !dir.is_empty() {
            return PathBuf::from(dir).join("accmos");
        }
    }
    if let Some(home) = std::env::var_os("HOME") {
        if !home.is_empty() {
            return PathBuf::from(home).join(".cache").join("accmos");
        }
    }
    std::env::temp_dir().join("accmos-cache")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir()
            .join(format!("accmos-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn fake_exe(dir: &Path, name: &str, contents: &[u8]) -> PathBuf {
        std::fs::create_dir_all(dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn lookup_miss_then_store_then_hit() {
        let root = scratch_root("basic");
        let cache = BuildCache::at(&root);
        assert!(cache.lookup("k1").is_none());
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1, evictions: 0 });

        let exe = fake_exe(&root.join("src"), "bin", b"#!/bin/true");
        cache.store("k1", &exe).unwrap();
        let hit = cache.lookup("k1").expect("stored entry found");
        assert_eq!(std::fs::read(hit).unwrap(), b"#!/bin/true");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(cache.len(), 1);
        cache.clear().unwrap();
    }

    #[test]
    fn clones_share_counters() {
        let root = scratch_root("clone");
        let cache = BuildCache::at(&root);
        let clone = cache.clone();
        assert!(clone.lookup("nope").is_none());
        assert_eq!(cache.stats().misses, 1);
        cache.clear().unwrap();
    }

    #[test]
    fn store_releases_the_lease() {
        let root = scratch_root("lease");
        let cache = BuildCache::at(&root);
        let exe = fake_exe(&root.join("src"), "bin", b"x");
        cache.store("k", &exe).unwrap();
        assert!(!cache.lease_held(), "lease must be released after store");
        assert!(cache.lookup("k").is_some());
        cache.clear().unwrap();
    }

    #[test]
    fn stale_lease_is_taken_over() {
        let root = scratch_root("stale-lease");
        std::fs::create_dir_all(&root).unwrap();
        // A lease left behind by a crashed process 60 s ago.
        let old_ts = lease::now_millis() - 60_000;
        std::fs::write(root.join(LOCK_NAME), format!("99999 {old_ts}")).unwrap();
        let cache = BuildCache::at(&root);
        let exe = fake_exe(&root.join("src"), "bin", b"x");
        let start = std::time::Instant::now();
        cache.store("k", &exe).unwrap();
        assert!(
            start.elapsed() < lease::LOCK_WAIT,
            "stale lease must be taken over, not waited out"
        );
        assert!(!cache.lease_held());
        assert!(cache.lookup("k").is_some());
        cache.clear().unwrap();
    }

    #[test]
    fn garbled_lease_is_treated_as_stale() {
        let root = scratch_root("garbled-lease");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join(LOCK_NAME), "not a lease").unwrap();
        assert!(lease::lease_is_stale(&root.join(LOCK_NAME)));
        // A fresh, well-formed lease is respected.
        std::fs::write(
            root.join(LOCK_NAME),
            format!("{} {}", std::process::id(), lease::now_millis()),
        )
        .unwrap();
        assert!(!lease::lease_is_stale(&root.join(LOCK_NAME)));
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Pin a stamp's mtime, simulating a 1-second-granularity filesystem
    /// where refreshes within the same second tie.
    fn pin_stamp_mtime(root: &Path, key: &str, t: std::time::SystemTime) {
        let stamp = root.join(key).join(STAMP_NAME);
        let f = std::fs::File::options().write(true).open(&stamp).unwrap();
        f.set_modified(t).unwrap();
    }

    #[test]
    fn eviction_breaks_mtime_ties_with_the_hit_sequence() {
        // Regression: eviction used to order entries by stamp mtime
        // alone, so on coarse-mtime filesystems a just-refreshed (hot)
        // entry tied with older ones and the victim was arbitrary. The
        // persisted hit sequence must decide even when every mtime is
        // identical.
        let root = scratch_root("mtime-tie");
        let cache = BuildCache::at(&root).with_max_entries(2);
        let exe = fake_exe(&root.join("src"), "bin", b"x");
        cache.store("a", &exe).unwrap();
        cache.store("b", &exe).unwrap();
        assert!(cache.lookup("a").is_some(), "refresh a: b is now LRU");
        let t = std::time::SystemTime::UNIX_EPOCH
            + std::time::Duration::from_secs(1_700_000_000);
        pin_stamp_mtime(&root, "a", t);
        pin_stamp_mtime(&root, "b", t);
        cache.store("c", &exe).unwrap(); // must evict b, not a
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup("b").is_none(), "stale entry evicted despite the tie");
        assert!(cache.lookup("a").is_some(), "hot entry survived the mtime tie");
        assert!(cache.lookup("c").is_some());
        cache.clear().unwrap();
    }

    #[test]
    fn eviction_falls_back_to_key_order_without_sequence_info() {
        // Entries from before the sequence file existed (empty stamps)
        // with identical mtimes: the victim must still be deterministic —
        // lexicographically smallest key first.
        let root = scratch_root("key-order");
        let cache = BuildCache::at(&root).with_max_entries(3);
        let t = std::time::SystemTime::UNIX_EPOCH
            + std::time::Duration::from_secs(1_700_000_000);
        for key in ["x", "m", "d"] {
            let entry = root.join(key);
            std::fs::create_dir_all(&entry).unwrap();
            std::fs::write(entry.join(EXE_NAME), b"x").unwrap();
            std::fs::write(entry.join(STAMP_NAME), b"").unwrap();
            pin_stamp_mtime(&root, key, t);
        }
        let exe = fake_exe(&root.join("src"), "bin", b"x");
        cache.store("zz", &exe).unwrap(); // 4 entries: one must go
        assert!(cache.lookup("d").is_none(), "smallest key evicted on full tie");
        assert!(cache.lookup("m").is_some());
        assert!(cache.lookup("x").is_some());
        assert!(cache.lookup("zz").is_some());
        cache.clear().unwrap();
    }

    #[test]
    fn eviction_keeps_most_recently_used() {
        let root = scratch_root("evict");
        let cache = BuildCache::at(&root).with_max_entries(2);
        let exe = fake_exe(&root.join("src"), "bin", b"x");
        cache.store("a", &exe).unwrap();
        // Ensure distinguishable mtimes on coarse-grained filesystems.
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store("b", &exe).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(cache.lookup("a").is_some()); // refresh a: b is now LRU
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store("c", &exe).unwrap(); // evicts b
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup("a").is_some(), "recently used entry survived");
        assert!(cache.lookup("b").is_none(), "LRU entry evicted");
        assert!(cache.lookup("c").is_some());
        cache.clear().unwrap();
    }
}
