//! Supervised execution of generated simulators.
//!
//! The compiled simulator is an *untrusted artifact*: it is machine-written
//! C, compiled moments ago, and run at 50M-step scale. A bare
//! `Command::output()` gives it unlimited wall-clock time and unlimited
//! output, and reduces every failure to "non-zero exit". This module
//! treats the generated binary as its own fault domain:
//!
//! - [`ExecPolicy`] bounds each run — a hard kill timeout (distinct from
//!   the simulator's own cooperative `--budget-ms`), a retry budget with
//!   exponential backoff and deterministic SplitMix64 jitter, and a cap on
//!   captured output bytes;
//! - [`Supervisor`] spawns the simulator, polls it, kills it at the
//!   deadline, and classifies every failure into a [`FailureKind`] so
//!   callers can decide retry-vs-quarantine mechanically;
//! - after [`ExecPolicy::quarantine_after`] classified crashes, an
//!   executable is **quarantined**: the supervisor refuses to run it again
//!   and callers (the batch runner, the pipeline facade) fall back to the
//!   interpretive engine instead.

use crate::error::BackendError;
use crate::lease;
use crate::protocol::parse_report;
use crate::run::prepare_command;
use crate::telemetry;
use accmos_ir::{SimulationReport, TestVectors};
use accmos_testgen::TestRng;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::Stdio;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Why a supervised simulator run failed.
///
/// The taxonomy is deliberately small and mechanical: each kind maps to
/// one recovery decision ([`FailureKind::is_retryable`]), so a scheduler
/// never has to parse error strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The process outlived [`ExecPolicy::kill_timeout`] and was killed.
    /// Not retried: the wall-clock budget is already spent.
    Timeout,
    /// The process died on a signal (SIGSEGV, SIGABRT, ...). Retried, and
    /// counted toward quarantine.
    Crashed {
        /// The terminating signal number (0 when the platform does not
        /// report signals).
        signal: i32,
    },
    /// The process exited with a non-zero status code. Retried: generated
    /// simulators exit non-zero on transient environment trouble (missing
    /// test-vector file, ulimit) as well as deterministic bugs.
    NonZeroExit {
        /// The exit code.
        code: i32,
    },
    /// The process exited successfully but its `ACCMOS:` stream did not
    /// parse (garbled or truncated). Not retried: protocol corruption is
    /// deterministic for a given binary and stimulus.
    ProtocolCorrupt,
    /// The process could not be spawned or its pipes failed. Retried.
    TransientIo,
}

impl FailureKind {
    /// Number of failure kinds, for [`FailureKind::index`]-indexed tallies.
    pub const COUNT: usize = 5;

    /// A stable ordinal for per-kind tallies (`0..COUNT`).
    pub fn index(self) -> usize {
        match self {
            FailureKind::Timeout => 0,
            FailureKind::Crashed { .. } => 1,
            FailureKind::NonZeroExit { .. } => 2,
            FailureKind::ProtocolCorrupt => 3,
            FailureKind::TransientIo => 4,
        }
    }

    /// Short label for the kind at ordinal `i`, for telemetry tables.
    pub fn label(i: usize) -> &'static str {
        ["timeout", "crash", "exit", "protocol", "io"][i]
    }

    /// Whether the supervisor should retry after this failure.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            FailureKind::Crashed { .. }
                | FailureKind::NonZeroExit { .. }
                | FailureKind::TransientIo
        )
    }

    /// Whether this failure counts toward quarantining the executable.
    pub fn is_crash(self) -> bool {
        matches!(self, FailureKind::Crashed { .. })
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Timeout => write!(f, "timeout"),
            FailureKind::Crashed { signal } => write!(f, "crashed on signal {signal}"),
            FailureKind::NonZeroExit { code } => write!(f, "exit code {code}"),
            FailureKind::ProtocolCorrupt => write!(f, "protocol corrupt"),
            FailureKind::TransientIo => write!(f, "transient i/o failure"),
        }
    }
}

/// Bounds on one supervised simulator execution.
///
/// The defaults are production-lenient (2-minute kill timeout, 2 retries,
/// 64 MiB of output); harnesses and tests tighten them.
#[derive(Debug, Clone)]
pub struct ExecPolicy {
    /// Hard wall-clock deadline after which the process is killed. This is
    /// the supervisor's *kill* timeout — independent of the simulator's own
    /// cooperative `--budget-ms` stop, which a hung or miscompiled binary
    /// never honors. `None` waits forever (the pre-supervision behavior).
    pub kill_timeout: Option<Duration>,
    /// Number of retries after the first failed attempt (total attempts =
    /// `retries + 1`). Only [`FailureKind::is_retryable`] failures retry.
    pub retries: u32,
    /// Base backoff before the first retry; doubled per retry.
    pub backoff: Duration,
    /// Ceiling on the exponential backoff.
    pub max_backoff: Duration,
    /// Seed for the deterministic SplitMix64 backoff jitter. The jitter
    /// stream is a pure function of `(jitter_seed, exe path, attempt)`, so
    /// a rerun of the same workload sleeps identically.
    pub jitter_seed: u64,
    /// Cap on captured stdout/stderr bytes; output beyond the cap is
    /// drained and discarded (the pipe never blocks the child).
    pub max_output_bytes: usize,
    /// Number of classified crashes after which an executable is
    /// quarantined and refused further runs.
    pub quarantine_after: u32,
}

impl Default for ExecPolicy {
    fn default() -> ExecPolicy {
        ExecPolicy {
            kill_timeout: Some(Duration::from_secs(120)),
            retries: 2,
            backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0xACC5,
            max_output_bytes: 64 * 1024 * 1024,
            quarantine_after: 3,
        }
    }
}

impl ExecPolicy {
    /// Builder-style: set the hard kill timeout.
    pub fn with_kill_timeout(mut self, t: Duration) -> ExecPolicy {
        self.kill_timeout = Some(t);
        self
    }

    /// Builder-style: set the retry budget.
    pub fn with_retries(mut self, n: u32) -> ExecPolicy {
        self.retries = n;
        self
    }

    /// Builder-style: set the base backoff duration.
    pub fn with_backoff(mut self, base: Duration) -> ExecPolicy {
        self.backoff = base;
        self
    }

    /// Builder-style: quarantine an executable after `n` crashes (1
    /// minimum).
    pub fn with_quarantine_after(mut self, n: u32) -> ExecPolicy {
        self.quarantine_after = n.max(1);
        self
    }

    /// The backoff before retry number `retry` (1-based) of `exe`:
    /// exponential in the retry index, plus up to 25% deterministic
    /// jitter drawn from a SplitMix64 stream seeded by `(jitter_seed,
    /// exe, retry)`. The returned duration — jitter included — never
    /// exceeds [`ExecPolicy::max_backoff`]; since the run loop sleeps for
    /// and records exactly this value, the cap also bounds
    /// [`RetryStats::backoff_sleep`] and the ledger backoff totals.
    pub fn backoff_before(&self, exe: &Path, retry: u32) -> Duration {
        let exp = self
            .backoff
            .saturating_mul(1u32 << retry.saturating_sub(1).min(16))
            .min(self.max_backoff);
        let mut rng = TestRng::seed_from_u64(
            self.jitter_seed ^ fnv1a(exe.as_os_str().as_encoded_bytes()) ^ u64::from(retry),
        );
        let jitter_ns = exp.as_nanos() as u64 / 4;
        let jitter = if jitter_ns == 0 { 0 } else { rng.gen_range(0..=jitter_ns) };
        (exp + Duration::from_nanos(jitter)).min(self.max_backoff)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Aggregate retry telemetry across every run a [`Supervisor`] handled.
///
/// Clones of a supervisor share one tally, so a worker pool's retries
/// land in a single struct the batch summary can report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retries per [`FailureKind::index`] ordinal.
    pub retry_kinds: [u64; FailureKind::COUNT],
    /// Total wall-clock time spent sleeping in retry backoff.
    pub backoff_sleep: Duration,
}

impl RetryStats {
    /// Total retries across all failure kinds.
    pub fn total_retries(self) -> u64 {
        self.retry_kinds.iter().sum()
    }
}

/// A successful supervised run.
#[derive(Debug)]
pub struct SupervisedRun {
    /// The parsed simulation report.
    pub report: SimulationReport,
    /// How many retries the run needed (0 = first attempt succeeded).
    pub retries: u32,
    /// Backoff sleep this run alone consumed — exact per-job attribution
    /// even when many jobs share one supervisor (whose [`RetryStats`]
    /// only aggregate).
    pub backoff: Duration,
    /// Peak resident set size of the child in KiB (`VmHWM`, sampled from
    /// `/proc/<pid>/status` while polling). `0` when the platform does
    /// not expose it or the child exited before the first sample.
    pub peak_rss_kb: u64,
}

/// File name of the persistent quarantine store inside a state dir.
const QUARANTINE_FILE: &str = "quarantine.jsonl";
/// Schema version of quarantine store lines.
const QUARANTINE_SCHEMA: u64 = 1;

/// Memoized identity of one executable file: `(len, mtime)` validate the
/// cached key, recomputing the content digest only when the file changed.
type IdentityCache = HashMap<PathBuf, (u64, SystemTime, String)>;

/// Runs simulator executables under an [`ExecPolicy`] and tracks per-
/// executable crash counts for quarantine.
///
/// Crash counts are keyed by the executable's **identity** — its path
/// *and* a digest of its bytes — not by path alone. Build directories and
/// cache entries reuse paths across recompiles (and across processes via
/// pid reuse), so a path-keyed registry would let a stale quarantine
/// poison a freshly built artifact: the new binary inherits the old
/// binary's crash count and is refused without ever running. Keying by
/// `(path, digest)` gives a recompiled (content-changed) artifact a clean
/// count, while copies of one binary at different paths still quarantine
/// independently (they may be invoked differently — argv0-dispatched
/// tools exist, our own fault injector among them).
///
/// Cloning the supervisor shares the quarantine registry, so one handle
/// can be distributed across a worker pool. With
/// [`Supervisor::with_state_dir`], crash events also persist to an
/// append-only `quarantine.jsonl` in the state directory, so batches
/// sharing one cache inherit quarantine state across processes.
#[derive(Debug, Clone, Default)]
pub struct Supervisor {
    policy: ExecPolicy,
    crashes: Arc<Mutex<HashMap<String, u32>>>,
    identities: Arc<Mutex<IdentityCache>>,
    stats: Arc<Mutex<RetryStats>>,
    state_file: Option<PathBuf>,
    tracer: Option<telemetry::Tracer>,
    trace_tid: u64,
}

impl Supervisor {
    /// A supervisor enforcing `policy`, with a process-local registry.
    pub fn new(policy: ExecPolicy) -> Supervisor {
        Supervisor {
            policy,
            crashes: Arc::default(),
            identities: Arc::default(),
            stats: Arc::default(),
            state_file: None,
            tracer: None,
            trace_tid: 1,
        }
    }

    /// Builder-style: record child-lifecycle spans (attempt, poll, kill,
    /// backoff) into `tracer`, on trace track 1. Clones share the
    /// tracer's buffer, so one trace collects every worker's spans.
    pub fn with_tracer(mut self, tracer: telemetry::Tracer) -> Supervisor {
        self.tracer = Some(tracer);
        self
    }

    /// Builder-style: the trace track (Chrome `tid`) lifecycle spans are
    /// recorded on. Concurrent workers cloning one supervisor set
    /// distinct tracks so their spans do not interleave into fake
    /// hierarchy.
    pub fn with_trace_tid(mut self, tid: u64) -> Supervisor {
        self.trace_tid = tid;
        self
    }

    /// Builder-style: persist crash counts to `dir/quarantine.jsonl` and
    /// seed the registry from events already recorded there, so a second
    /// batch process sharing the state (cache) directory inherits
    /// quarantine decisions. Stale entries are harmless by construction:
    /// they are keyed by content digest, so a recompiled artifact at the
    /// same path never matches them.
    ///
    /// Reads are self-repairing, matching the run ledger's semantics:
    /// torn tails and garbled lines are skipped, exact duplicate lines
    /// (a replayed append after a crash, or a copied store) count once,
    /// and records carrying the crash ordinal `n` contribute
    /// `max(n)`-per-key rather than one-per-line — so duplicated events
    /// can never inflate a crash count into a spurious quarantine.
    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> Supervisor {
        let file = dir.into().join(QUARANTINE_FILE);
        let mut map: HashMap<String, u32> = HashMap::new();
        if let Ok(contents) = std::fs::read_to_string(&file) {
            let mut seen: HashSet<&str> = HashSet::new();
            let mut legacy: HashMap<String, u32> = HashMap::new();
            for line in contents.lines() {
                let Some(fields) = telemetry::parse_flat_object(line) else {
                    continue; // torn tail or garbled line: skip
                };
                if fields.num("schema") != Some(QUARANTINE_SCHEMA) {
                    continue;
                }
                let Some(key) = fields.str("key") else {
                    continue;
                };
                if !seen.insert(line.trim()) {
                    continue; // byte-identical duplicate: one observation
                }
                match fields.num("n") {
                    Some(n) => {
                        // Ordinal records are idempotent: "this was crash
                        // #n of this key". The count is the max ordinal.
                        let n = u32::try_from(n).unwrap_or(u32::MAX);
                        let slot = map.entry(key).or_insert(0);
                        *slot = (*slot).max(n);
                    }
                    // Pre-ordinal records can only be counted per line.
                    None => *legacy.entry(key).or_insert(0) += 1,
                }
            }
            // A store mixing legacy and ordinal records (written across an
            // upgrade) seeds each key with whichever evidence says more.
            for (key, count) in legacy {
                let slot = map.entry(key).or_insert(0);
                *slot = (*slot).max(count);
            }
        }
        *self.crashes.lock().expect("crash registry") = map;
        self.state_file = Some(file);
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> &ExecPolicy {
        &self.policy
    }

    /// Aggregate retry telemetry so far (shared across clones).
    pub fn retry_stats(&self) -> RetryStats {
        *self.stats.lock().expect("retry stats")
    }

    /// The identity key of `exe`: `<content-digest>|<path>`, with `-` for
    /// the digest when the file cannot be read (the path alone then
    /// identifies it, matching the old behavior for nonexistent paths).
    /// Digests are memoized and revalidated by `(len, mtime)`, so the
    /// file is only re-hashed after it actually changed.
    fn identity(&self, exe: &Path) -> String {
        let Ok(meta) = std::fs::metadata(exe) else {
            return format!("-|{}", exe.display());
        };
        let len = meta.len();
        let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
        let mut cache = self.identities.lock().expect("identity cache");
        if let Some((l, m, key)) = cache.get(exe) {
            if *l == len && *m == mtime {
                return key.clone();
            }
        }
        let digest = fnv1a(&std::fs::read(exe).unwrap_or_default());
        let key = format!("{digest:016x}|{}", exe.display());
        cache.insert(exe.to_path_buf(), (len, mtime, key.clone()));
        key
    }

    /// Classified crash count of `exe` (its current content) so far.
    pub fn crash_count(&self, exe: &Path) -> u32 {
        let key = self.identity(exe);
        self.crashes.lock().expect("crash registry").get(&key).copied().unwrap_or(0)
    }

    /// Whether `exe` has crashed often enough to be refused further runs.
    pub fn is_quarantined(&self, exe: &Path) -> bool {
        self.crash_count(exe) >= self.policy.quarantine_after
    }

    /// Paths currently quarantined.
    pub fn quarantined(&self) -> Vec<PathBuf> {
        self.crashes
            .lock()
            .expect("crash registry")
            .iter()
            .filter(|(_, &n)| n >= self.policy.quarantine_after)
            .filter_map(|(key, _)| key.split_once('|').map(|(_, p)| PathBuf::from(p)))
            .collect()
    }

    fn record_crash(&self, exe: &Path) -> u32 {
        let key = self.identity(exe);
        let n = {
            let mut map = self.crashes.lock().expect("crash registry");
            let n = map.entry(key.clone()).or_insert(0);
            *n += 1;
            *n
        };
        if let Some(file) = &self.state_file {
            // Best-effort: a lost persistence line only costs another
            // crash observation in the next process. The ordinal `n`
            // makes the record idempotent: replaying it can only confirm
            // "crash #n happened", never inflate the count past n.
            let line = format!(
                "{{\"schema\":{QUARANTINE_SCHEMA},\"ts_ms\":{},\"n\":{n},\"key\":{}}}",
                lease::now_millis(),
                telemetry::json_str(&key)
            );
            let _ = telemetry::append_jsonl(file, &line);
        }
        n
    }

    /// Run `exe` under the policy: spawn, poll, kill on deadline, classify
    /// failures, retry retryable ones with backoff.
    ///
    /// # Errors
    ///
    /// - [`BackendError::Quarantined`] when `exe` is already quarantined;
    /// - [`BackendError::Supervised`] carrying the [`FailureKind`] of the
    ///   last attempt once the retry budget is exhausted (or the failure is
    ///   not retryable);
    /// - [`BackendError::Io`] when the test-vector file cannot be written.
    pub fn run(
        &self,
        exe: &Path,
        work_dir: &Path,
        steps: u64,
        tests: &TestVectors,
        opts: &crate::RunOptions,
    ) -> Result<SupervisedRun, BackendError> {
        if self.is_quarantined(exe) {
            return Err(BackendError::Quarantined {
                exe: exe.to_path_buf(),
                crashes: self.crash_count(exe),
            });
        }
        let mut attempt = 0u32;
        let mut slept = Duration::ZERO;
        loop {
            let attempt_start = self.tracer.as_ref().map(|t| t.now_us());
            let once = self.run_once(exe, work_dir, steps, tests, opts)?;
            if let (Some(t), Some(start)) = (self.tracer.as_ref(), attempt_start) {
                let outcome = match &once {
                    Ok(_) => "ok".to_owned(),
                    Err((kind, _)) => kind.to_string(),
                };
                t.record(telemetry::TraceSpan {
                    name: format!("attempt {attempt}"),
                    cat: "supervisor".to_owned(),
                    start_us: start,
                    dur_us: t.now_us().saturating_sub(start),
                    tid: self.trace_tid,
                    args: vec![
                        ("exe".to_owned(), exe.display().to_string()),
                        ("outcome".to_owned(), outcome),
                    ],
                });
            }
            match once {
                Ok((report, peak_rss_kb)) => {
                    return Ok(SupervisedRun {
                        report,
                        retries: attempt,
                        backoff: slept,
                        peak_rss_kb,
                    })
                }
                Err((kind, detail)) => {
                    if kind.is_crash() {
                        self.record_crash(exe);
                    }
                    let exhausted = attempt >= self.policy.retries;
                    if exhausted || !kind.is_retryable() || self.is_quarantined(exe) {
                        return Err(BackendError::Supervised {
                            exe: exe.to_path_buf(),
                            kind,
                            attempts: attempt + 1,
                            detail,
                        });
                    }
                    attempt += 1;
                    let backoff = self.policy.backoff_before(exe, attempt);
                    {
                        let mut stats = self.stats.lock().expect("retry stats");
                        stats.retry_kinds[kind.index()] += 1;
                        stats.backoff_sleep += backoff;
                    }
                    slept += backoff;
                    let backoff_start = self.tracer.as_ref().map(|t| t.now_us());
                    std::thread::sleep(backoff);
                    if let (Some(t), Some(start)) = (self.tracer.as_ref(), backoff_start) {
                        t.record(telemetry::TraceSpan {
                            name: format!("backoff {attempt}"),
                            cat: "supervisor".to_owned(),
                            start_us: start,
                            dur_us: t.now_us().saturating_sub(start),
                            tid: self.trace_tid,
                            args: vec![("after".to_owned(), kind.to_string())],
                        });
                    }
                }
            }
        }
    }

    /// One attempt. The outer `Result` is for unrecoverable setup errors
    /// (the test-vector file cannot be written); the inner one classifies
    /// the attempt itself. The inner `Ok` carries the child's peak RSS in
    /// KiB alongside the parsed report.
    #[allow(clippy::type_complexity)]
    fn run_once(
        &self,
        exe: &Path,
        work_dir: &Path,
        steps: u64,
        tests: &TestVectors,
        opts: &crate::RunOptions,
    ) -> Result<Result<(SimulationReport, u64), (FailureKind, String)>, BackendError> {
        let (mut cmd, tc_guard) = prepare_command(exe, work_dir, steps, tests, opts)?;
        cmd.stdin(Stdio::null()).stdout(Stdio::piped()).stderr(Stdio::piped());
        let mut child = match cmd.spawn() {
            Ok(c) => c,
            Err(e) => {
                return Ok(Err((
                    FailureKind::TransientIo,
                    format!("spawn failed: {e}"),
                )))
            }
        };
        let cap = self.policy.max_output_bytes;
        let out_reader = bounded_reader(child.stdout.take(), cap);
        let err_reader = bounded_reader(child.stderr.take(), cap.min(64 * 1024));

        let deadline = self.policy.kill_timeout.map(|t| Instant::now() + t);
        let mut poll = Duration::from_millis(1);
        let poll_start = self.tracer.as_ref().map(|t| t.now_us());
        // Sample the child's high-water RSS on every poll iteration and
        // keep the last reading: the `/proc` entry loses `VmHWM` once the
        // child is a zombie, so there is no "read it at the end". The
        // reap itself (`try_wait_child`) also reports the kernel's own
        // `ru_maxrss`, which covers children fast enough to exit before
        // the first sample.
        let mut peak_rss = 0u64;
        let (status, timed_out) = loop {
            if let kb @ 1.. = proc_peak_rss_kb(child.id()) {
                peak_rss = kb;
            }
            match try_wait_child(&mut child) {
                Ok(Some((status, reap_rss_kb))) => {
                    peak_rss = peak_rss.max(reap_rss_kb);
                    break (Some(status), false);
                }
                Ok(None) => {}
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    drop(tc_guard);
                    return Ok(Err((
                        FailureKind::TransientIo,
                        format!("wait failed: {e}"),
                    )));
                }
            }
            let now = Instant::now();
            if deadline.is_some_and(|d| now >= d) {
                let kill_start = self.tracer.as_ref().map(|t| t.now_us());
                let _ = child.kill();
                let _ = child.wait();
                if let (Some(t), Some(start)) = (self.tracer.as_ref(), kill_start) {
                    t.span(
                        "supervisor",
                        "kill",
                        start,
                        t.now_us().saturating_sub(start),
                        self.trace_tid,
                    );
                }
                break (None, true);
            }
            std::thread::sleep(next_poll_sleep(poll, deadline, now));
            poll = (poll * 2).min(Duration::from_millis(10));
        };
        if let (Some(t), Some(start)) = (self.tracer.as_ref(), poll_start) {
            t.record(telemetry::TraceSpan {
                name: "poll".to_owned(),
                cat: "supervisor".to_owned(),
                start_us: start,
                dur_us: t.now_us().saturating_sub(start),
                tid: self.trace_tid,
                args: vec![("peak_rss_kb".to_owned(), peak_rss.to_string())],
            });
        }
        // The child is reaped, so its ends of the pipes are closed and the
        // readers normally see EOF immediately. But a simulator that
        // forked (a shell wrapper, a daemonizing bug) can leave an orphan
        // holding the write end — never let that stall the supervisor:
        // join with a grace period and abandon a stuck reader. A killed
        // child's orphans get almost no grace; a clean exit gets a couple
        // of seconds to flush.
        let grace = if timed_out {
            Duration::from_millis(100)
        } else {
            Duration::from_secs(2)
        };
        let (stdout, out_truncated, out_stalled) =
            out_reader.map(|h| join_reader(h, grace)).unwrap_or_default();
        let (stderr, _, _) =
            err_reader.map(|h| join_reader(h, grace)).unwrap_or_default();
        drop(tc_guard);

        if timed_out {
            let t = self.policy.kill_timeout.unwrap_or_default();
            return Ok(Err((
                FailureKind::Timeout,
                format!(
                    "killed after exceeding the {t:?} supervisor deadline; stdout tail: {}",
                    tail_str(&stdout, 512)
                ),
            )));
        }
        let status = status.expect("status present when not timed out");
        if !status.success() {
            let kind = match status_signal(&status) {
                Some(signal) => FailureKind::Crashed { signal },
                None => FailureKind::NonZeroExit { code: status.code().unwrap_or(-1) },
            };
            return Ok(Err((
                kind,
                format!(
                    "{kind}; stderr tail: {}; stdout tail: {}",
                    tail_str(&stderr, 1024),
                    tail_str(&stdout, 1024)
                ),
            )));
        }
        if out_stalled {
            return Ok(Err((
                FailureKind::ProtocolCorrupt,
                "stdout pipe still open after the process exited (orphaned \
                 child process holding it?); output abandoned"
                    .into(),
            )));
        }
        if out_truncated {
            return Ok(Err((
                FailureKind::ProtocolCorrupt,
                format!(
                    "stdout exceeded the {cap}-byte output cap; tail: {}",
                    tail_str(&stdout, 512)
                ),
            )));
        }
        match parse_report(&String::from_utf8_lossy(&stdout)) {
            Ok(report) => Ok(Ok((report, peak_rss))),
            Err(e) => Ok(Err((FailureKind::ProtocolCorrupt, e.to_string()))),
        }
    }
}

/// The sleep before the next poll iteration: the exponential backoff
/// `poll`, clamped to the time remaining until `deadline`. The backoff
/// caps at 10 ms, so an unclamped sleep could overshoot a kill deadline
/// by up to one full poll period — a 200 ms `--exec-timeout` used to
/// kill at up to ~210 ms. Clamping the last sleep wakes the loop exactly
/// at the deadline.
fn next_poll_sleep(poll: Duration, deadline: Option<Instant>, now: Instant) -> Duration {
    match deadline {
        Some(d) => poll.min(d.saturating_duration_since(now)),
        None => poll,
    }
}

/// Non-blocking reap: `try_wait`, plus the child's peak RSS in KiB where
/// the platform reports it at reap time.
///
/// `std::process::Child::try_wait` discards the `rusage` the kernel
/// delivers with the exit status, and a zombie's `/proc/<pid>/status` no
/// longer carries `VmHWM` — so a child that exits between two poll
/// samples used to report `peak_rss = 0`. On Linux, `wait4` returns the
/// status *and* `ru_maxrss` (already in KiB) in one syscall, closing the
/// window entirely: the kernel's high-water mark is authoritative no
/// matter how fast the child exited.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
fn try_wait_child(
    child: &mut std::process::Child,
) -> std::io::Result<Option<(std::process::ExitStatus, u64)>> {
    use std::os::unix::process::ExitStatusExt;

    #[repr(C)]
    struct RUsage {
        ru_utime: [i64; 2],
        ru_stime: [i64; 2],
        // ru_maxrss first, then the 13 remaining ru_* counters.
        data: [i64; 14],
    }
    extern "C" {
        fn wait4(pid: i32, status: *mut i32, options: i32, rusage: *mut RUsage) -> i32;
    }
    const WNOHANG: i32 = 1;

    let pid = child.id() as i32;
    let mut status = 0i32;
    let mut ru =
        RUsage { ru_utime: [0; 2], ru_stime: [0; 2], data: [0; 14] };
    // SAFETY: `status` and `ru` are valid, properly aligned out-pointers
    // for the duration of the call; WNOHANG makes the call non-blocking.
    let r = unsafe { wait4(pid, &mut status, WNOHANG, &mut ru) };
    match r {
        0 => Ok(None),
        r if r == pid => {
            let rss_kb = ru.data[0].max(0) as u64;
            Ok(Some((ExitStatusExt::from_raw(status), rss_kb)))
        }
        _ => Err(std::io::Error::last_os_error()),
    }
}

/// Platforms without `wait4`: plain `try_wait`, no reap-time RSS.
#[cfg(not(target_os = "linux"))]
fn try_wait_child(
    child: &mut std::process::Child,
) -> std::io::Result<Option<(std::process::ExitStatus, u64)>> {
    Ok(child.try_wait()?.map(|s| (s, 0)))
}

/// Shared capture state for one attempt's pipe reader.
///
/// `live` is the attempt's epoch tag: [`join_reader`] clears it when it
/// abandons a stalled reader, after which the (now stale) thread keeps
/// draining the pipe — a writer must never block — but stops appending.
/// Without the seal, a reader abandoned on the kill-deadline path could
/// outlive its attempt and flush late bytes into a buffer the run loop
/// has already classified.
struct Capture {
    /// `(captured bytes, truncated?)` under one lock.
    buf: Mutex<(Vec<u8>, bool)>,
    live: AtomicBool,
}

/// A running pipe reader: the shared capture plus its thread handle.
struct CaptureHandle {
    capture: Arc<Capture>,
    thread: std::thread::JoinHandle<()>,
}

/// Read a child pipe to EOF on a helper thread, keeping at most `cap`
/// bytes and draining (but discarding) the rest so the child never blocks
/// on a full pipe.
fn bounded_reader<R: Read + Send + 'static>(pipe: Option<R>, cap: usize) -> Option<CaptureHandle> {
    let mut pipe = pipe?;
    let capture = Arc::new(Capture {
        buf: Mutex::new((Vec::new(), false)),
        live: AtomicBool::new(true),
    });
    let shared = Arc::clone(&capture);
    let thread = std::thread::spawn(move || {
        let mut chunk = [0u8; 8192];
        loop {
            match pipe.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if !shared.live.load(Ordering::Acquire) {
                        continue; // stale: drain, never capture
                    }
                    let mut buf = shared.buf.lock().expect("capture buffer");
                    let room = cap.saturating_sub(buf.0.len());
                    let take = n.min(room);
                    buf.0.extend_from_slice(&chunk[..take]);
                    if take < n {
                        buf.1 = true;
                    }
                }
            }
        }
    });
    Some(CaptureHandle { capture, thread })
}

/// Join a reader thread, abandoning it if it has not reached EOF within
/// `grace` (an orphaned grandchild can hold the pipe open indefinitely).
/// Returns `(captured, truncated, stalled)`.
///
/// Abandoning **seals** the capture (stale appends are dropped) and then
/// snapshots whatever arrived in time, so a partially-flushed protocol
/// stream still reaches the failure detail — previously the whole
/// capture was discarded and triage saw `<empty>`.
fn join_reader(handle: CaptureHandle, grace: Duration) -> (Vec<u8>, bool, bool) {
    let deadline = Instant::now() + grace;
    while !handle.thread.is_finished() {
        if Instant::now() >= deadline {
            handle.capture.live.store(false, Ordering::Release);
            let buf = handle.capture.buf.lock().expect("capture buffer");
            return (buf.0.clone(), buf.1, true);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = handle.thread.join();
    let buf = handle.capture.buf.lock().expect("capture buffer");
    (buf.0.clone(), buf.1, false)
}

/// The terminating signal of a process, where the platform reports one.
#[cfg(unix)]
pub(crate) fn status_signal(status: &std::process::ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

/// The peak resident set size (`VmHWM`, KiB) of a live process, read from
/// `/proc/<pid>/status`. Returns 0 when the entry is gone (the child
/// already exited) or the field is absent (non-Linux unixes).
#[cfg(unix)]
fn proc_peak_rss_kb(pid: u32) -> u64 {
    let Ok(status) = std::fs::read_to_string(format!("/proc/{pid}/status")) else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Non-unix platforms have no `/proc`; peak RSS is reported as 0.
#[cfg(not(unix))]
fn proc_peak_rss_kb(_pid: u32) -> u64 {
    0
}

/// Non-unix platforms do not report signals.
#[cfg(not(unix))]
pub(crate) fn status_signal(_status: &std::process::ExitStatus) -> Option<i32> {
    None
}

/// The last `max` bytes of `bytes` as lossy UTF-8 (for error details; keeps
/// crash triage possible without rerunning the simulator).
pub(crate) fn tail_str(bytes: &[u8], max: usize) -> String {
    if bytes.is_empty() {
        return "<empty>".into();
    }
    let start = bytes.len().saturating_sub(max);
    let mut s = String::from_utf8_lossy(&bytes[start..]).into_owned();
    if start > 0 {
        s.insert_str(0, "...");
    }
    s.trim_end().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let policy = ExecPolicy::default();
        let exe = Path::new("/tmp/sim");
        let a = policy.backoff_before(exe, 1);
        let b = policy.backoff_before(exe, 1);
        assert_eq!(a, b, "same (seed, exe, retry) must sleep identically");
        let later = policy.backoff_before(exe, 3);
        assert!(later > a, "backoff grows with the retry index");
        assert!(later <= policy.max_backoff, "jitter stays inside the cap");
        let other = ExecPolicy { jitter_seed: 1, ..ExecPolicy::default() };
        assert_ne!(a, other.backoff_before(exe, 1), "seed changes the jitter");
    }

    #[test]
    fn backoff_never_exceeds_max_backoff_at_the_boundary() {
        // Regression: with the exponential term already at the cap, the
        // 25% jitter used to be added on top, so the real sleep could
        // reach 1.25× max_backoff. The final duration must be clamped.
        let policy = ExecPolicy {
            backoff: Duration::from_secs(1),
            max_backoff: Duration::from_secs(1),
            ..ExecPolicy::default()
        };
        for retry in 1..=10 {
            for exe in ["/tmp/a", "/tmp/b", "/tmp/c", "/tmp/sim-long-name"] {
                let d = policy.backoff_before(Path::new(exe), retry);
                assert!(
                    d <= policy.max_backoff,
                    "retry {retry} of {exe}: {d:?} exceeds the {:?} cap",
                    policy.max_backoff
                );
            }
        }
        // At the boundary the clamp pins the sleep to exactly the cap
        // (the exponential term alone already reaches it).
        assert_eq!(policy.backoff_before(Path::new("/tmp/a"), 4), policy.max_backoff);
        // Below the cap, jitter still spreads sleeps between distinct
        // executables.
        let roomy = ExecPolicy {
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(60),
            ..ExecPolicy::default()
        };
        let a = roomy.backoff_before(Path::new("/tmp/a"), 2);
        let b = roomy.backoff_before(Path::new("/tmp/b"), 2);
        assert_ne!(a, b, "jitter survives the clamp when there is headroom");
    }

    #[test]
    fn retryability_is_mechanical() {
        assert!(!FailureKind::Timeout.is_retryable());
        assert!(!FailureKind::ProtocolCorrupt.is_retryable());
        assert!(FailureKind::Crashed { signal: 11 }.is_retryable());
        assert!(FailureKind::NonZeroExit { code: 3 }.is_retryable());
        assert!(FailureKind::TransientIo.is_retryable());
        assert!(FailureKind::Crashed { signal: 6 }.is_crash());
        assert!(!FailureKind::NonZeroExit { code: 1 }.is_crash());
    }

    #[test]
    fn quarantine_counts_per_executable() {
        let sup = Supervisor::new(ExecPolicy::default().with_quarantine_after(2));
        let a = Path::new("/tmp/a");
        let b = Path::new("/tmp/b");
        assert!(!sup.is_quarantined(a));
        sup.record_crash(a);
        assert!(!sup.is_quarantined(a));
        sup.record_crash(a);
        assert!(sup.is_quarantined(a));
        assert!(!sup.is_quarantined(b), "quarantine is per-executable");
        assert_eq!(sup.quarantined(), vec![a.to_path_buf()]);
        // Clones share the registry.
        assert!(sup.clone().is_quarantined(a));
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("accmos-supervise-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn recompiled_artifact_starts_with_a_clean_crash_count() {
        // Regression: quarantine used to be keyed by path alone, so a
        // fresh binary installed at a reused path inherited the old
        // binary's crashes and could be refused without ever running.
        let dir = scratch_dir("recompile");
        let exe = dir.join("sim");
        std::fs::write(&exe, b"buggy build").unwrap();
        let sup = Supervisor::new(ExecPolicy::default().with_quarantine_after(2));
        sup.record_crash(&exe);
        sup.record_crash(&exe);
        assert!(sup.is_quarantined(&exe));
        // "Recompile": different bytes land at the same path. (Different
        // length, so the (len, mtime) revalidation can't false-hit on
        // coarse filesystem timestamps.)
        std::fs::write(&exe, b"fixed build, longer").unwrap();
        assert_eq!(sup.crash_count(&exe), 0, "new content, clean slate");
        assert!(!sup.is_quarantined(&exe), "stale quarantine must not poison the rebuild");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_bytes_at_different_paths_quarantine_independently() {
        // Copies of one binary can behave differently (argv0 dispatch —
        // our own fault injector does this), so identity is (path,
        // digest), never digest alone.
        let dir = scratch_dir("copies");
        let a = dir.join("sim-a");
        let b = dir.join("sim-b");
        std::fs::write(&a, b"same bytes").unwrap();
        std::fs::write(&b, b"same bytes").unwrap();
        let sup = Supervisor::new(ExecPolicy::default().with_quarantine_after(1));
        sup.record_crash(&a);
        assert!(sup.is_quarantined(&a));
        assert!(!sup.is_quarantined(&b), "same content, different path, own count");
        assert_eq!(sup.quarantined(), vec![a.clone()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_persists_across_supervisors_sharing_a_state_dir() {
        let dir = scratch_dir("persist");
        let exe = dir.join("sim");
        std::fs::write(&exe, b"crashy").unwrap();
        let policy = ExecPolicy::default().with_quarantine_after(2);

        // "Process 1" records two crashes.
        let sup1 = Supervisor::new(policy.clone()).with_state_dir(&dir);
        sup1.record_crash(&exe);
        sup1.record_crash(&exe);
        assert!(sup1.is_quarantined(&exe));
        assert!(dir.join(QUARANTINE_FILE).exists(), "crash events persisted");

        // "Process 2" (a fresh supervisor) inherits the quarantine.
        let sup2 = Supervisor::new(policy.clone()).with_state_dir(&dir);
        assert_eq!(sup2.crash_count(&exe), 2, "persisted events loaded");
        assert!(sup2.is_quarantined(&exe));

        // A supervisor without the state dir stays process-local.
        let fresh = Supervisor::new(policy.clone());
        assert!(!fresh.is_quarantined(&exe));

        // Recompiling the artifact clears it even for inherited state:
        // the persisted events name the old digest.
        std::fs::write(&exe, b"rebuilt, different bytes").unwrap();
        let sup3 = Supervisor::new(policy).with_state_dir(&dir);
        assert_eq!(sup3.crash_count(&exe), 0, "persisted quarantine is content-addressed");
        assert!(!sup3.is_quarantined(&exe));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_quarantine_store_lines_are_skipped_on_load() {
        let dir = scratch_dir("torn");
        let exe = dir.join("sim");
        std::fs::write(&exe, b"crashy").unwrap();
        let policy = ExecPolicy::default().with_quarantine_after(1);
        let sup = Supervisor::new(policy.clone()).with_state_dir(&dir);
        sup.record_crash(&exe);
        // A writer died mid-append: torn tail with no newline.
        let store = dir.join(QUARANTINE_FILE);
        let mut contents = std::fs::read(&store).unwrap();
        contents.extend_from_slice(b"{\"schema\":1,\"ts_ms\":12,\"ke");
        std::fs::write(&store, &contents).unwrap();
        let sup2 = Supervisor::new(policy).with_state_dir(&dir);
        assert_eq!(sup2.crash_count(&exe), 1, "complete events survive a torn tail");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicated_quarantine_events_count_once_on_load() {
        // A replayed append (writer crashed after the write but before
        // acknowledging it, then retried) or a copied store leaves
        // byte-identical lines. Counting each line would inflate the
        // crash count and quarantine a binary that crashed once.
        let dir = scratch_dir("dedup");
        let exe = dir.join("sim");
        std::fs::write(&exe, b"crashy").unwrap();
        let policy = ExecPolicy::default().with_quarantine_after(2);
        let sup = Supervisor::new(policy.clone()).with_state_dir(&dir);
        sup.record_crash(&exe);
        let store = dir.join(QUARANTINE_FILE);
        let contents = std::fs::read_to_string(&store).unwrap();
        // Replay the whole store three times over.
        std::fs::write(&store, contents.repeat(3)).unwrap();
        let sup2 = Supervisor::new(policy).with_state_dir(&dir);
        assert_eq!(sup2.crash_count(&exe), 1, "duplicates deduped on load");
        assert!(!sup2.is_quarantined(&exe), "replayed events must not quarantine");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_ordinals_make_the_count_the_max_not_the_line_total() {
        // Two records with distinct timestamps but ordinals 1 and 2 mean
        // "this key has crashed twice", even if more copies of crash #2
        // exist with different ts_ms (e.g. a store concatenated from two
        // backups). max(n) is immune to that; line-counting is not.
        let dir = scratch_dir("ordinal");
        let exe = dir.join("sim");
        std::fs::write(&exe, b"crashy").unwrap();
        let policy = ExecPolicy::default().with_quarantine_after(3);
        let sup = Supervisor::new(policy.clone()).with_state_dir(&dir);
        sup.record_crash(&exe);
        sup.record_crash(&exe);
        let store = dir.join(QUARANTINE_FILE);
        let contents = std::fs::read_to_string(&store).unwrap();
        // Re-stamp the replayed copy so the lines are not byte-identical.
        let restamped: String = contents
            .lines()
            .map(|l| format!("{}\n", l.replace("\"ts_ms\":", "\"ts_ms\":9")))
            .collect();
        std::fs::write(&store, format!("{contents}{restamped}")).unwrap();
        let sup2 = Supervisor::new(policy).with_state_dir(&dir);
        assert_eq!(sup2.crash_count(&exe), 2, "max ordinal, not 4 lines");
        assert!(!sup2.is_quarantined(&exe));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_quarantine_records_without_ordinals_still_count() {
        // Stores written before the ordinal field carry one event per
        // line; they must keep seeding the registry.
        let dir = scratch_dir("legacy");
        let exe = dir.join("sim");
        std::fs::write(&exe, b"crashy").unwrap();
        let policy = ExecPolicy::default().with_quarantine_after(2);
        let sup = Supervisor::new(policy.clone());
        let key = sup.identity(&exe);
        let store = dir.join(QUARANTINE_FILE);
        let lines: String = (0..2)
            .map(|i| {
                format!(
                    "{{\"schema\":{QUARANTINE_SCHEMA},\"ts_ms\":{i},\"key\":{}}}\n",
                    telemetry::json_str(&key)
                )
            })
            .collect();
        std::fs::write(&store, lines).unwrap();
        let sup2 = Supervisor::new(policy).with_state_dir(&dir);
        assert_eq!(sup2.crash_count(&exe), 2, "legacy lines counted per line");
        assert!(sup2.is_quarantined(&exe));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_stats_shared_across_clones() {
        let sup = Supervisor::new(ExecPolicy::default());
        assert_eq!(sup.retry_stats(), RetryStats::default());
        let kind = FailureKind::Crashed { signal: 11 };
        {
            let mut stats = sup.stats.lock().unwrap();
            stats.retry_kinds[kind.index()] += 1;
            stats.backoff_sleep += Duration::from_millis(40);
        }
        let seen = sup.clone().retry_stats();
        assert_eq!(seen.retry_kinds[FailureKind::Crashed { signal: 11 }.index()], 1);
        assert_eq!(seen.total_retries(), 1);
        assert_eq!(seen.backoff_sleep, Duration::from_millis(40));
        assert_eq!(FailureKind::label(kind.index()), "crash");
    }

    #[test]
    fn failure_kind_ordinals_are_dense_and_labeled() {
        let kinds = [
            FailureKind::Timeout,
            FailureKind::Crashed { signal: 6 },
            FailureKind::NonZeroExit { code: 1 },
            FailureKind::ProtocolCorrupt,
            FailureKind::TransientIo,
        ];
        let mut seen = [false; FailureKind::COUNT];
        for k in kinds {
            assert!(!seen[k.index()], "duplicate ordinal");
            seen[k.index()] = true;
            assert!(!FailureKind::label(k.index()).is_empty());
        }
        assert!(seen.iter().all(|s| *s), "every ordinal covered");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_reads_vmhwm_for_live_pids_and_zero_for_dead_ones() {
        assert!(
            proc_peak_rss_kb(std::process::id()) > 0,
            "our own VmHWM must be visible"
        );
        assert_eq!(proc_peak_rss_kb(u32::MAX), 0, "gone pid reads as unmeasured");
    }

    #[test]
    fn next_poll_sleep_clamps_the_last_sleep_to_the_deadline() {
        let now = Instant::now();
        let poll = Duration::from_millis(10);
        // No deadline: the backoff is used as-is.
        assert_eq!(next_poll_sleep(poll, None, now), poll);
        // Far deadline: the backoff still wins.
        let far = Some(now + Duration::from_secs(5));
        assert_eq!(next_poll_sleep(poll, far, now), poll);
        // 3 ms remaining: the sleep is exactly the remainder, not 10 ms —
        // this is the overshoot-by-one-poll-period bug.
        let near = Some(now + Duration::from_millis(3));
        assert_eq!(next_poll_sleep(poll, near, now), Duration::from_millis(3));
        // Deadline already passed: no sleep at all.
        let past = Some(now - Duration::from_millis(1));
        assert_eq!(next_poll_sleep(poll, past, now), Duration::ZERO);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reap_reports_the_kernels_peak_rss_even_for_instant_children() {
        // `true` exits as fast as a process can; /proc polling would
        // almost always miss it, but wait4's rusage cannot.
        let mut child = std::process::Command::new("true").spawn().unwrap();
        let mut reaped = None;
        for _ in 0..2000 {
            if let Some(r) = try_wait_child(&mut child).unwrap() {
                reaped = Some(r);
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let (status, rss_kb) = reaped.expect("child reaped");
        assert!(status.success());
        assert!(rss_kb > 0, "reap-time ru_maxrss must be non-zero, got {rss_kb}");
    }

    #[test]
    fn abandoned_reader_keeps_early_bytes_and_drops_late_ones() {
        // A pipe that yields "early", stalls past any reasonable grace,
        // then flushes "LATE" — the shape of a killed child whose orphan
        // flushes after the supervisor moved on.
        struct HangThenFlush {
            stage: usize,
        }
        impl Read for HangThenFlush {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.stage += 1;
                match self.stage {
                    1 => {
                        buf[..5].copy_from_slice(b"early");
                        Ok(5)
                    }
                    2 => {
                        std::thread::sleep(Duration::from_millis(80));
                        buf[..4].copy_from_slice(b"LATE");
                        Ok(4)
                    }
                    _ => Ok(0),
                }
            }
        }
        let handle = bounded_reader(Some(HangThenFlush { stage: 0 }), 1 << 20).unwrap();
        let capture = Arc::clone(&handle.capture);
        // Wait until "early" has landed so the snapshot is deterministic.
        let t0 = Instant::now();
        while capture.buf.lock().unwrap().0.len() < 5 {
            assert!(t0.elapsed() < Duration::from_secs(5), "early bytes never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        let (bytes, truncated, stalled) = join_reader(handle, Duration::from_millis(5));
        assert!(stalled, "the reader is mid-stall and must be abandoned");
        assert!(!truncated);
        assert_eq!(bytes, b"early", "partial output survives abandonment");
        // Let the stale thread wake up, see the late flush, and finish:
        // the sealed capture must not grow.
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(
            capture.buf.lock().unwrap().0,
            b"early",
            "stale reader appended after its attempt was classified"
        );
    }

    #[test]
    fn tail_keeps_the_end() {
        assert_eq!(tail_str(b"", 8), "<empty>");
        assert_eq!(tail_str(b"hello", 8), "hello");
        assert_eq!(tail_str(b"0123456789", 4), "...6789");
    }
}
