//! Per-phase run telemetry and the persistent run ledger.
//!
//! The paper's headline claims are wall-clock numbers (Table 2: up to
//! 215.3× average speedup at 50M steps), but a harness that measures each
//! run in isolation and throws the numbers away cannot show a performance
//! *trajectory*. This module makes every run durable and queryable:
//!
//! - [`PhaseMicros`] records one job's wall-clock spans — parse →
//!   flatten/schedule (preprocess) → analyze → codegen → compile → run,
//!   plus retry backoff sleep — as `u64` **microseconds** end-to-end.
//!   Milliseconds truncate sub-millisecond phases (a cached compile is
//!   tens of µs) to 0 and poison trend medians; formatting happens at the
//!   display edge only ([`fmt_us`]).
//! - [`RunRecord`] is one schema-versioned ledger entry: who ran what
//!   (source, model, engine, steps), how it went (outcome, retries,
//!   compile cache hit) and the phase spans.
//! - [`RunLedger`] is an append-only JSONL file under the cache/state
//!   directory, lease-locked like [`crate::BuildCache`] so concurrent
//!   batch processes sharing one cache dir interleave whole lines only.
//!   Reads are truncation-tolerant, mirroring the `ACCMOS:` protocol
//!   parser: a partial last line (writer died mid-append) is reported,
//!   not fatal, and lines from other schema versions are skipped, not
//!   errors.
//! - [`compute_trends`] / [`check_regressions`] turn the ledger into
//!   per-model/per-engine phase medians and a CI regression gate
//!   (`accmos trends --check --max-regress PCT`).
//!
//! Records are encoded by hand as flat one-line JSON objects (the
//! workspace has no serialization dependency, by design) and parsed by a
//! small scanner that tolerates unknown keys, so future schema revisions
//! can add fields without breaking old readers.

use crate::lease;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Wall-clock spans of one job, per pipeline phase, in microseconds.
///
/// Everything is `u64` microseconds end-to-end; only display code
/// ([`fmt_us`]) converts to human units. A phase that did not run for a
/// given job (e.g. `parse_us` for an in-memory model, `analyze_us` when
/// pruning is disabled) is 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseMicros {
    /// Parsing the `.mdlx` source (0 for in-memory models).
    pub parse_us: u64,
    /// Flatten + type-check + schedule (`accmos_graph::preprocess`).
    pub preprocess_us: u64,
    /// Static analysis for proven-safe instrumentation pruning (0 when
    /// pruning is disabled or the engine does not instrument).
    pub analyze_us: u64,
    /// C (or Rust) source synthesis.
    pub codegen_us: u64,
    /// Compiler invocation, or the cache-hit copy when
    /// [`RunRecord::compile_cached`] is set.
    pub compile_us: u64,
    /// Supervised execution of the simulator, including retries.
    pub run_us: u64,
    /// Retry backoff sleep attributable to this job (0 when the first
    /// attempt succeeded).
    pub backoff_us: u64,
}

impl PhaseMicros {
    /// Phase names, index-aligned with [`PhaseMicros::get`].
    pub const NAMES: [&'static str; 7] =
        ["parse", "preprocess", "analyze", "codegen", "compile", "run", "backoff"];

    /// The span at ordinal `i` (see [`PhaseMicros::NAMES`]).
    pub fn get(&self, i: usize) -> u64 {
        [
            self.parse_us,
            self.preprocess_us,
            self.analyze_us,
            self.codegen_us,
            self.compile_us,
            self.run_us,
            self.backoff_us,
        ][i]
    }

    /// Set the span at ordinal `i` (see [`PhaseMicros::NAMES`]).
    pub fn set(&mut self, i: usize, us: u64) {
        let slot = [
            &mut self.parse_us,
            &mut self.preprocess_us,
            &mut self.analyze_us,
            &mut self.codegen_us,
            &mut self.compile_us,
            &mut self.run_us,
            &mut self.backoff_us,
        ];
        *slot[i] = us;
    }

    /// Sum of all phase spans (saturating).
    pub fn total_us(&self) -> u64 {
        (0..Self::NAMES.len()).fold(0u64, |acc, i| acc.saturating_add(self.get(i)))
    }
}

/// A [`Duration`] as saturating `u64` microseconds — the only conversion
/// the ledger stores.
pub fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Format microseconds for humans at the display edge: `417µs`, `4.52ms`,
/// `1.38s`. Storage and arithmetic stay in integer microseconds.
pub fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// One schema-versioned entry of the run ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunRecord {
    /// Ledger schema version ([`RunLedger::SCHEMA`] for records written
    /// by this build). Readers skip records from other versions.
    pub schema: u64,
    /// Milliseconds since the Unix epoch when the record was appended.
    pub ts_ms: u64,
    /// What produced the record: `run`, `batch`, `table2`, `table3`,
    /// `ablation`, ...
    pub source: String,
    /// Model name (the job label when the run failed before reporting).
    pub model: String,
    /// Engine that produced the result: `accmos`, `rac`, `sse`, `rust`,
    /// ... Empty when the job failed before any engine reported.
    pub engine: String,
    /// Simulated steps.
    pub steps: u64,
    /// How the job ended: [`outcome::OK`], [`outcome::DEGRADED`] (fell
    /// back to the interpretive engine), [`outcome::QUARANTINED`] (refused
    /// without running) or [`outcome::FAILED`].
    pub outcome: String,
    /// Whether the compile phase was a build-cache hit.
    pub compile_cached: bool,
    /// Retries the supervised run needed (0 = first attempt succeeded).
    pub retries: u64,
    /// Lane width of the run (1 = classic scalar simulator; N > 1 = the
    /// structure-of-arrays multi-vector simulator stepping N test vectors
    /// per schedule iteration). Trends group by lane width so lane and
    /// scalar configurations never share a baseline.
    pub lanes: u64,
    /// Free-form context (fallback reason, error class); empty = omitted
    /// from the encoded record.
    pub note: String,
    /// Peak resident set size of the simulator child process in KiB
    /// (`VmHWM` sampled from `/proc/<pid>/status` by the supervisor's
    /// poll loop). 0 = not measured (interpreter fallback, non-Linux
    /// hosts, or the child exited before the first poll); omitted from
    /// the encoded record when 0.
    pub peak_rss_kb: u64,
    /// Per-actor profile aggregates of a profiled build, encoded as one
    /// flat string (`name=ns:calls` entries joined by commas — the
    /// ledger's JSON is flat by design, so no arrays). Empty = the run
    /// was not profiled; omitted from the encoded record. See
    /// [`encode_profile`] / [`decode_profile`].
    pub prof: String,
    /// Per-phase wall-clock spans.
    pub phases: PhaseMicros,
}

/// The closed set of [`RunRecord::outcome`] values this build writes.
pub mod outcome {
    /// The job produced a report on its primary engine.
    pub const OK: &str = "ok";
    /// The job produced a report, but only after degrading to the
    /// interpretive engine.
    pub const DEGRADED: &str = "degraded";
    /// The job was refused because its executable is quarantined.
    pub const QUARANTINED: &str = "quarantined";
    /// The job produced no report.
    pub const FAILED: &str = "failed";
}

impl RunRecord {
    /// A record stamped with the current schema version and wall clock,
    /// ready for the caller to fill in.
    pub fn new(source: &str, model: &str) -> RunRecord {
        RunRecord {
            schema: RunLedger::SCHEMA,
            ts_ms: u64::try_from(lease::now_millis()).unwrap_or(u64::MAX),
            source: source.into(),
            model: model.into(),
            lanes: 1,
            ..RunRecord::default()
        }
    }

    /// Encode as one flat JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        push_num(&mut s, "schema", self.schema);
        push_num(&mut s, "ts_ms", self.ts_ms);
        push_str(&mut s, "source", &self.source);
        push_str(&mut s, "model", &self.model);
        push_str(&mut s, "engine", &self.engine);
        push_num(&mut s, "steps", self.steps);
        push_str(&mut s, "outcome", &self.outcome);
        push_bool(&mut s, "compile_cached", self.compile_cached);
        push_num(&mut s, "retries", self.retries);
        push_num(&mut s, "lanes", self.lanes.max(1));
        if !self.note.is_empty() {
            push_str(&mut s, "note", &self.note);
        }
        if self.peak_rss_kb > 0 {
            push_num(&mut s, "peak_rss_kb", self.peak_rss_kb);
        }
        if !self.prof.is_empty() {
            push_str(&mut s, "prof", &self.prof);
        }
        for i in 0..PhaseMicros::NAMES.len() {
            push_num(&mut s, &format!("{}_us", PhaseMicros::NAMES[i]), self.phases.get(i));
        }
        s.pop(); // trailing comma
        s.push('}');
        s
    }

    /// Decode one ledger line. `None` when the line is not a well-formed
    /// flat JSON object with the expected field types; unknown keys are
    /// ignored so newer schemas still parse as far as they overlap.
    pub fn from_json(line: &str) -> Option<RunRecord> {
        let fields = parse_flat_object(line)?;
        let mut r = RunRecord {
            schema: fields.num("schema")?,
            ts_ms: fields.num("ts_ms").unwrap_or(0),
            source: fields.str("source").unwrap_or_default(),
            model: fields.str("model").unwrap_or_default(),
            engine: fields.str("engine").unwrap_or_default(),
            steps: fields.num("steps").unwrap_or(0),
            outcome: fields.str("outcome").unwrap_or_default(),
            compile_cached: fields.bool("compile_cached").unwrap_or(false),
            retries: fields.num("retries").unwrap_or(0),
            // Records written before the lane schema addition are scalar.
            lanes: fields.num("lanes").unwrap_or(1).max(1),
            note: fields.str("note").unwrap_or_default(),
            peak_rss_kb: fields.num("peak_rss_kb").unwrap_or(0),
            prof: fields.str("prof").unwrap_or_default(),
            phases: PhaseMicros::default(),
        };
        for i in 0..PhaseMicros::NAMES.len() {
            let key = format!("{}_us", PhaseMicros::NAMES[i]);
            r.phases.set(i, fields.num(&key).unwrap_or(0));
        }
        Some(r)
    }
}

fn push_str(out: &mut String, key: &str, val: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&json_str(val));
    out.push(',');
}

fn push_num(out: &mut String, key: &str, val: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&val.to_string());
    out.push(',');
}

fn push_bool(out: &mut String, key: &str, val: bool) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if val { "true" } else { "false" });
    out.push(',');
}

/// JSON string literal with escaping (same contract as the analyzer's
/// report emitter). Public so other JSONL stores built on
/// [`append_jsonl`] / [`parse_flat_object`] (e.g. the fuzz campaign
/// state) encode strings identically to the ledger.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A scalar value in a flat ledger object.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Str(String),
    Num(u64),
    Bool(bool),
}

/// Parsed flat object with typed accessors. Each accessor returns `None`
/// when the key is absent *or* holds a value of a different type — a
/// schema mismatch reads the same as a missing field, which is the
/// skip-don't-error posture every JSONL reader here takes.
pub struct Fields(BTreeMap<String, Scalar>);

impl Fields {
    /// The non-negative integer at `key`, if present with that type.
    pub fn num(&self, key: &str) -> Option<u64> {
        match self.0.get(key) {
            Some(Scalar::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// The string at `key`, if present with that type.
    pub fn str(&self, key: &str) -> Option<String> {
        match self.0.get(key) {
            Some(Scalar::Str(s)) => Some(s.clone()),
            _ => None,
        }
    }

    /// The boolean at `key`, if present with that type.
    pub fn bool(&self, key: &str) -> Option<bool> {
        match self.0.get(key) {
            Some(Scalar::Bool(b)) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one flat JSON object — string keys, scalar values (string /
/// non-negative integer / bool). No nesting, no arrays, no floats: the
/// ledger never writes them, and rejecting them keeps the parser small
/// and the failure mode crisp (`None`, line skipped). Trailing bytes
/// after the closing brace — two records fused by a torn write — also
/// yield `None`.
pub fn parse_flat_object(line: &str) -> Option<Fields> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut map = BTreeMap::new();
    loop {
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
            }
            _ => {}
        }
        skip_ws(&mut chars);
        if chars.peek() == Some(&'}') {
            chars.next();
            break;
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let val = match chars.peek()? {
            '"' => Scalar::Str(parse_string(&mut chars)?),
            't' | 'f' => {
                let word: String =
                    std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_alphabetic())).collect();
                match word.as_str() {
                    "true" => Scalar::Bool(true),
                    "false" => Scalar::Bool(false),
                    _ => return None,
                }
            }
            c if c.is_ascii_digit() => {
                let digits: String =
                    std::iter::from_fn(|| chars.next_if(char::is_ascii_digit)).collect();
                Scalar::Num(digits.parse().ok()?)
            }
            _ => return None,
        };
        map.insert(key, val);
        skip_ws(&mut chars);
    }
    // Anything after the closing brace (other than whitespace, already
    // trimmed) means the line is garbled — e.g. two records fused by a
    // torn write.
    if chars.next().is_some() {
        return None;
    }
    Some(Fields(map))
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.next_if(|c| c.is_whitespace()).is_some() {}
}

/// Parse a JSON string literal (cursor on the opening quote).
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).map_while(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Result of reading a ledger file: the records that parsed, plus what
/// did not (mirroring the `ACCMOS:` protocol's truncation taxonomy).
#[derive(Debug, Default)]
pub struct LedgerView {
    /// Records matching [`RunLedger::SCHEMA`], in file order.
    pub records: Vec<RunRecord>,
    /// Complete lines that were garbled or from another schema version.
    pub skipped: usize,
    /// Whether the file ends mid-record (no trailing newline and the tail
    /// does not parse) — a writer died mid-append; everything before the
    /// tail is still usable.
    pub truncated_tail: bool,
}

/// The append-only JSONL run ledger under a cache/state directory.
///
/// Appends take the same cross-process lease the [`crate::BuildCache`]
/// uses (bounded wait, stale takeover), then issue one `O_APPEND` write
/// of the whole line, so concurrent batch processes sharing a cache dir
/// interleave whole records only.
#[derive(Debug, Clone)]
pub struct RunLedger {
    path: PathBuf,
}

impl RunLedger {
    /// Schema version written by this build; readers skip other versions.
    pub const SCHEMA: u64 = 1;
    /// Ledger file name under the state directory.
    pub const FILE_NAME: &'static str = "ledger.jsonl";

    /// The ledger inside state directory `dir` (created on first append).
    pub fn in_dir(dir: impl Into<PathBuf>) -> RunLedger {
        RunLedger { path: dir.into().join(Self::FILE_NAME) }
    }

    /// The ledger file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record under the cross-process lease.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers on the simulation path treat
    /// them as best-effort (a lost telemetry line never fails a run).
    pub fn append(&self, record: &RunRecord) -> std::io::Result<()> {
        append_jsonl(&self.path, &record.to_json())
    }

    /// Read every record, tolerating a truncated tail and foreign lines.
    /// A missing file is an empty ledger, not an error.
    pub fn read(&self) -> LedgerView {
        let Ok(contents) = std::fs::read_to_string(&self.path) else {
            return LedgerView::default();
        };
        let mut view = LedgerView::default();
        let complete_tail = contents.ends_with('\n');
        let lines: Vec<&str> = contents.lines().filter(|l| !l.trim().is_empty()).collect();
        for (i, line) in lines.iter().enumerate() {
            match RunRecord::from_json(line) {
                Some(r) if r.schema == Self::SCHEMA => view.records.push(r),
                Some(_) => view.skipped += 1, // foreign schema: skip, don't error
                None if i + 1 == lines.len() && !complete_tail => {
                    // Mid-record tail: the writer died between the lease
                    // and the newline. Recoverable by construction.
                    view.truncated_tail = true;
                }
                None => view.skipped += 1,
            }
        }
        view
    }
}

/// Append one JSON line to the JSONL store at `path` under the
/// cross-process lease (lock file `.<name>.lock` alongside the store).
/// A torn tail (previous writer died mid-append) is repaired by starting
/// a fresh line, so the tear costs exactly the torn record. Shared by the
/// run ledger, the persistent quarantine store and the fuzz campaign
/// state.
///
/// # Errors
///
/// Propagates filesystem errors (directory creation, open, write).
pub fn append_jsonl(path: &Path, json_line: &str) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or(Path::new("."));
    std::fs::create_dir_all(dir)?;
    let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("store");
    let _lease = lease::acquire(&dir.join(format!(".{name}.lock")));
    // A file not ending in '\n' has a torn tail (a writer died
    // mid-append). Start a fresh line so the tear costs exactly the
    // torn record, never the one being appended now.
    let mut line = String::with_capacity(json_line.len() + 2);
    if tail_is_torn(path) {
        line.push('\n');
    }
    line.push_str(json_line);
    line.push('\n');
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(line.as_bytes())
}

/// Whether the file at `path` exists, is non-empty and does not end with
/// a newline — i.e. its last record was torn by a dying writer.
fn tail_is_torn(path: &Path) -> bool {
    use std::io::{Read, Seek, SeekFrom};
    let Ok(mut f) = std::fs::File::open(path) else {
        return false; // no file: nothing torn
    };
    let mut last = [0u8; 1];
    f.seek(SeekFrom::End(-1)).is_ok() && f.read_exact(&mut last).is_ok() && last[0] != b'\n'
}

/// Per-(model, engine, lane-width) phase medians over ledger records,
/// plus the latest cohort for regression checking.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelTrend {
    /// Model name.
    pub model: String,
    /// Engine the samples ran on (mixing engines would poison medians).
    pub engine: String,
    /// Lane width of the samples (mixing lane configurations would poison
    /// medians just like mixing engines).
    pub lanes: u64,
    /// Number of samples (outcome `ok` or `degraded`).
    pub runs: usize,
    /// Per-phase medians across all samples.
    pub median: PhaseMicros,
    /// Median `run_us` of the latest *cohort*: every sample sharing the
    /// newest timestamp. A batch appends many records in the same
    /// millisecond; treating only one of them as "latest" would leave its
    /// own siblings in the baseline.
    pub latest_run_us: u64,
    /// Median `run_us` of every sample *outside* the latest cohort — the
    /// baseline the latest cohort is compared against. `None` when every
    /// sample shares the newest timestamp.
    pub baseline_run_us: Option<u64>,
    /// Latest-vs-baseline change in percent (positive = slower). `None`
    /// when there is no baseline or the baseline is 0.
    pub regress_pct: Option<f64>,
}

impl ModelTrend {
    /// Display key for the engine + lane configuration: `accmos` for
    /// scalar samples, `accmos@8` for 8-lane samples.
    pub fn engine_key(&self) -> String {
        if self.lanes > 1 {
            format!("{}@{}", self.engine, self.lanes)
        } else {
            self.engine.clone()
        }
    }
}

/// Compute per-(model, engine, lane-width) trends over ledger records,
/// sorted by model, engine, then lane width. Only records that produced a
/// report (outcome `ok` or `degraded`) are samples; refused and failed
/// runs carry no timing signal.
///
/// The "latest run" used for regression checking is the latest *cohort*:
/// all samples sharing the newest `ts_ms`. Batch runs append whole groups
/// of records in one millisecond; comparing a single member against a
/// baseline polluted by its own siblings would dilute `regress_pct` and
/// weaken the `trends --check` gate.
pub fn compute_trends(records: &[RunRecord]) -> Vec<ModelTrend> {
    let mut groups: BTreeMap<(String, String, u64), Vec<&RunRecord>> = BTreeMap::new();
    for r in records {
        if r.outcome == outcome::OK || r.outcome == outcome::DEGRADED {
            groups
                .entry((r.model.clone(), r.engine.clone(), r.lanes.max(1)))
                .or_default()
                .push(r);
        }
    }
    groups
        .into_iter()
        .map(|((model, engine, lanes), samples)| {
            let newest_ts = samples.iter().map(|r| r.ts_ms).max().unwrap_or(0);
            let mut median = PhaseMicros::default();
            for phase in 0..PhaseMicros::NAMES.len() {
                let vals: Vec<u64> = samples.iter().map(|r| r.phases.get(phase)).collect();
                median.set(phase, median_of(&vals));
            }
            let (cohort, baseline): (Vec<&&RunRecord>, Vec<&&RunRecord>) =
                samples.iter().partition(|r| r.ts_ms == newest_ts);
            let latest_run_us =
                median_of(&cohort.iter().map(|r| r.phases.run_us).collect::<Vec<_>>());
            let baseline: Vec<u64> = baseline.iter().map(|r| r.phases.run_us).collect();
            let baseline_run_us =
                if baseline.is_empty() { None } else { Some(median_of(&baseline)) };
            let regress_pct = baseline_run_us.filter(|&b| b > 0).map(|b| {
                (latest_run_us as f64 - b as f64) / b as f64 * 100.0
            });
            ModelTrend {
                model,
                engine,
                lanes,
                runs: samples.len(),
                median,
                latest_run_us,
                baseline_run_us,
                regress_pct,
            }
        })
        .collect()
}

/// The CI gate: every trend whose latest run is more than
/// `max_regress_pct` percent slower than its baseline median, rendered as
/// human-readable violations. Empty = gate passes.
pub fn check_regressions(trends: &[ModelTrend], max_regress_pct: f64) -> Vec<String> {
    trends
        .iter()
        .filter_map(|t| {
            let pct = t.regress_pct?;
            (pct > max_regress_pct).then(|| {
                format!(
                    "{} [{}]: latest run {} is {:+.1}% vs baseline median {} (limit {:.1}%)",
                    t.model,
                    t.engine_key(),
                    fmt_us(t.latest_run_us),
                    pct,
                    fmt_us(t.baseline_run_us.unwrap_or(0)),
                    max_regress_pct
                )
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Hierarchical trace spans
// ---------------------------------------------------------------------------

/// One completed span of the hierarchical trace: a named wall-clock
/// interval on a logical track, with a category and optional string
/// arguments. Spans are recorded flat (post-hoc, from already-measured
/// durations — recording never sits on the timed path); hierarchy is
/// recovered by interval containment within a track ([`Tracer::tree`])
/// and by the Chrome trace-event viewer, which nests `ph:"X"` events the
/// same way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Span name (e.g. `compile`, `attempt 0`, `M_Add`).
    pub name: String,
    /// Category: `pipeline`, `supervisor`, `actor`, `fuzz`, `bench`.
    pub cat: String,
    /// Start, microseconds since the tracer's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Logical track (Chrome `tid`). Concurrent batch workers use
    /// distinct tracks so their spans do not interleave into fake
    /// hierarchy.
    pub tid: u64,
    /// Extra `key=value` context rendered into the event's `args`.
    pub args: Vec<(String, String)>,
}

/// A span with its containment children (see [`Tracer::tree`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// The span itself.
    pub span: TraceSpan,
    /// Spans on the same track strictly contained in this one.
    pub children: Vec<TraceNode>,
}

/// Shared collector for [`TraceSpan`]s with one wall-clock epoch.
///
/// Cloning shares the buffer (`Arc<Mutex<..>>`), so one tracer can be
/// threaded through the pipeline, the supervisor and batch workers and
/// drained once at the end into a Chrome trace-event JSON file
/// (`--trace-out`, loadable in Perfetto / `chrome://tracing`).
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

#[derive(Debug)]
struct TracerInner {
    epoch: Instant,
    spans: Vec<TraceSpan>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh tracer; its epoch (trace time 0) is now.
    pub fn new() -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                epoch: Instant::now(),
                spans: Vec::new(),
            })),
        }
    }

    /// Microseconds elapsed since the tracer's epoch.
    pub fn now_us(&self) -> u64 {
        micros(self.inner.lock().expect("tracer lock").epoch.elapsed())
    }

    /// Record one completed span.
    pub fn record(&self, span: TraceSpan) {
        self.inner.lock().expect("tracer lock").spans.push(span);
    }

    /// Record a completed span from its parts, with no extra args.
    pub fn span(&self, cat: &str, name: &str, start_us: u64, dur_us: u64, tid: u64) {
        self.record(TraceSpan {
            name: name.to_owned(),
            cat: cat.to_owned(),
            start_us,
            dur_us,
            tid,
            args: Vec::new(),
        });
    }

    /// Render a profiled run's per-actor aggregates as `actor`-category
    /// leaf spans laid end to end from `start_us` on track `tid` — an
    /// attribution view (cumulative time per site, not individual
    /// invocations), sized so the leaves nest inside the enclosing run
    /// span in proportion to their measured share.
    pub fn record_profile(
        &self,
        start_us: u64,
        tid: u64,
        profile: &[accmos_ir::ActorProfile],
    ) {
        let mut at = start_us;
        for p in profile {
            let dur = p.ns / 1_000;
            self.record(TraceSpan {
                name: p.actor.clone(),
                cat: "actor".to_owned(),
                start_us: at,
                dur_us: dur,
                tid,
                args: vec![
                    ("ns".to_owned(), p.ns.to_string()),
                    ("calls".to_owned(), p.calls.to_string()),
                ],
            });
            at += dur;
        }
    }

    /// Snapshot of every span recorded so far, in recording order.
    pub fn spans(&self) -> Vec<TraceSpan> {
        self.inner.lock().expect("tracer lock").spans.clone()
    }

    /// The recorded spans as a forest, hierarchy recovered by interval
    /// containment within each track: a span is the child of the
    /// innermost same-track span that contains it. Ties (identical
    /// intervals) nest by recording order.
    pub fn tree(&self) -> Vec<TraceNode> {
        let mut spans = self.spans();
        // Sort outermost-first within each track: by track, then start
        // ascending, then duration descending (a containing span starts
        // no later and lasts no shorter than its children).
        spans.sort_by(|a, b| {
            a.tid
                .cmp(&b.tid)
                .then(a.start_us.cmp(&b.start_us))
                .then(b.dur_us.cmp(&a.dur_us))
        });
        let mut roots: Vec<TraceNode> = Vec::new();
        for span in spans {
            insert_node(&mut roots, TraceNode { span, children: Vec::new() });
        }
        roots
    }

    /// Encode every recorded span as Chrome trace-event JSON (the
    /// `traceEvents` array format, complete `ph:"X"` duration events,
    /// timestamps in microseconds) — loadable in Perfetto and
    /// `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let spans = self.spans();
        let mut out = String::with_capacity(spans.len() * 96 + 64);
        out.push_str("{\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            out.push_str(&json_str(&s.name));
            out.push_str(",\"cat\":");
            out.push_str(&json_str(&s.cat));
            out.push_str(",\"ph\":\"X\",\"ts\":");
            out.push_str(&s.start_us.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&s.dur_us.to_string());
            out.push_str(",\"pid\":1,\"tid\":");
            out.push_str(&s.tid.to_string());
            if !s.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in s.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_str(k));
                    out.push(':');
                    out.push_str(&json_str(v));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Write the Chrome trace-event JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_chrome_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

/// Insert `node` into the forest: descend into the last sibling while it
/// contains the node (spans arrive outermost-first, so the containing
/// candidate is always the most recent one at each level).
fn insert_node(siblings: &mut Vec<TraceNode>, node: TraceNode) {
    if let Some(last) = siblings.last_mut() {
        let l = &last.span;
        let n = &node.span;
        if l.tid == n.tid
            && l.start_us <= n.start_us
            && n.start_us + n.dur_us <= l.start_us + l.dur_us
        {
            insert_node(&mut last.children, node);
            return;
        }
    }
    siblings.push(node);
}

// ---------------------------------------------------------------------------
// Profile aggregates in the ledger
// ---------------------------------------------------------------------------

/// Encode per-site profile aggregates as the ledger's flat `prof` string
/// field: `name=ns:calls` entries joined by commas. Site names are
/// sanitized actor path keys or `fused:<key>+<n>` labels — neither
/// contains `=` or `,`, so the encoding is unambiguous.
pub fn encode_profile(profile: &[accmos_ir::ActorProfile]) -> String {
    profile
        .iter()
        .map(|p| format!("{}={}:{}:{}", p.actor, p.ns, p.calls, p.timed))
        .collect::<Vec<_>>()
        .join(",")
}

/// Decode a [`RunRecord::prof`] string back into per-site aggregates.
/// Malformed entries are skipped (the skip-don't-error posture of every
/// ledger reader).
pub fn decode_profile(s: &str) -> Vec<accmos_ir::ActorProfile> {
    s.split(',')
        .filter_map(|entry| {
            let (actor, counters) = entry.split_once('=')?;
            let mut parts = counters.split(':');
            let ns = parts.next()?.parse().ok()?;
            let calls = parts.next()?.parse().ok()?;
            // Records from before sampled timing carry no third counter;
            // every call was timed then.
            let timed = match parts.next() {
                Some(t) => t.parse().ok()?,
                None => calls,
            };
            (!actor.is_empty() && parts.next().is_none()).then_some(
                accmos_ir::ActorProfile { actor: actor.to_owned(), ns, calls, timed },
            )
        })
        .collect()
}

/// Median of a non-empty slice (0 for empty); even-length medians average
/// the middle pair, truncating toward zero.
fn median_of(vals: &[u64]) -> u64 {
    if vals.is_empty() {
        return 0;
    }
    let mut sorted = vals.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        sorted[mid - 1] / 2 + sorted[mid] / 2 + (sorted[mid - 1] % 2 + sorted[mid] % 2) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("accmos-telemetry-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(model: &str, run_us: u64, ts_ms: u64) -> RunRecord {
        RunRecord {
            schema: RunLedger::SCHEMA,
            ts_ms,
            source: "test".into(),
            model: model.into(),
            engine: "accmos".into(),
            steps: 1000,
            outcome: outcome::OK.into(),
            compile_cached: true,
            retries: 0,
            lanes: 1,
            note: String::new(),
            peak_rss_kb: 0,
            prof: String::new(),
            phases: PhaseMicros { run_us, compile_us: 85, ..PhaseMicros::default() },
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let mut r = RunRecord::new("batch", "SPV \"quoted\"\npath");
        r.engine = "accmos".into();
        r.steps = 50_000_000;
        r.outcome = outcome::DEGRADED.into();
        r.compile_cached = true;
        r.retries = 2;
        r.note = "fell back: tab\there".into();
        r.phases = PhaseMicros {
            parse_us: 1,
            preprocess_us: 437,        // sub-millisecond spans must survive
            analyze_us: 52,
            codegen_us: 999,
            compile_us: 63,            // cached compile: tens of µs
            run_us: 1_234_567,
            backoff_us: 37,
        };
        let line = r.to_json();
        assert!(!line.contains('\n'), "encoded record is one line");
        let back = RunRecord::from_json(&line).expect("round trip parses");
        assert_eq!(back, r);
        assert_eq!(back.phases.preprocess_us, 437, "microseconds, not truncated ms");
    }

    #[test]
    fn micros_conversion_preserves_sub_millisecond_spans() {
        assert_eq!(micros(Duration::from_micros(437)), 437);
        assert_eq!(micros(Duration::from_nanos(1_500)), 1, "ns floor to µs");
        assert_eq!(micros(Duration::from_secs(2)), 2_000_000);
        // The old as_millis() path would have reported 0 here.
        assert_ne!(micros(Duration::from_micros(437)), 0);
    }

    #[test]
    fn fmt_us_formats_at_the_display_edge() {
        assert_eq!(fmt_us(0), "0µs");
        assert_eq!(fmt_us(417), "417µs");
        assert_eq!(fmt_us(4_520), "4.52ms");
        assert_eq!(fmt_us(1_380_000), "1.38s");
    }

    #[test]
    fn ledger_appends_and_reads_back_in_order() {
        let dir = scratch_dir("append");
        let ledger = RunLedger::in_dir(&dir);
        assert!(ledger.read().records.is_empty(), "missing file is an empty ledger");
        ledger.append(&sample("A", 100, 1)).unwrap();
        // A second handle (a second process in real life) appends too.
        RunLedger::in_dir(&dir).append(&sample("B", 200, 2)).unwrap();
        let view = ledger.read();
        assert_eq!(view.records.len(), 2);
        assert_eq!(view.records[0].model, "A");
        assert_eq!(view.records[1].model, "B");
        assert_eq!(view.skipped, 0);
        assert!(!view.truncated_tail);
        assert!(
            !dir.join(format!(".{}.lock", RunLedger::FILE_NAME)).exists(),
            "lease released after append"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_last_line_is_recovered_not_fatal() {
        let dir = scratch_dir("truncate");
        let ledger = RunLedger::in_dir(&dir);
        ledger.append(&sample("A", 100, 1)).unwrap();
        ledger.append(&sample("B", 200, 2)).unwrap();
        // A writer died mid-append: the tail is a partial record with no
        // trailing newline (mirrors the ACCMOS: protocol truncation case).
        let mut contents = std::fs::read(ledger.path()).unwrap();
        let half = sample("C", 300, 3).to_json();
        contents.extend_from_slice(half[..half.len() / 2].as_bytes());
        std::fs::write(ledger.path(), &contents).unwrap();
        let view = ledger.read();
        assert_eq!(view.records.len(), 2, "records before the tear survive");
        assert!(view.truncated_tail, "mid-record tail detected");
        assert_eq!(view.skipped, 0, "a torn tail is not a garbled line");
        // The next append repairs the tear: it starts a fresh line, so
        // the crash costs exactly the torn record.
        ledger.append(&sample("D", 400, 4)).unwrap();
        let view = ledger.read();
        assert_eq!(view.records.len(), 3, "append after a tear is not lost");
        assert_eq!(view.records[2].model, "D");
        assert_eq!(view.skipped, 1, "the torn record, now newline-terminated");
        assert!(!view.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_schema_and_garbled_lines_are_skipped() {
        let dir = scratch_dir("schema");
        let ledger = RunLedger::in_dir(&dir);
        ledger.append(&sample("A", 100, 1)).unwrap();
        let mut future = sample("B", 200, 2);
        future.schema = RunLedger::SCHEMA + 1;
        ledger.append(&future).unwrap();
        let mut contents = std::fs::read_to_string(ledger.path()).unwrap();
        contents.push_str("not json at all\n");
        std::fs::write(ledger.path(), &contents).unwrap();
        ledger.append(&sample("C", 300, 3)).unwrap();
        let view = ledger.read();
        assert_eq!(view.records.len(), 2, "current-schema records kept");
        assert_eq!(view.skipped, 2, "foreign schema + garbled line skipped");
        assert!(!view.truncated_tail, "complete lines, even bad ones, are not a tear");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_keys_are_tolerated() {
        let line = r#"{"schema":1,"model":"M","outcome":"ok","run_us":42,"future_field":"x","another":7}"#;
        let r = RunRecord::from_json(line).expect("unknown keys ignored");
        assert_eq!(r.model, "M");
        assert_eq!(r.phases.run_us, 42);
    }

    #[test]
    fn trailing_garbage_after_object_is_rejected() {
        let fused = format!("{}{}", sample("A", 1, 1).to_json(), sample("B", 2, 2).to_json());
        assert!(RunRecord::from_json(&fused).is_none(), "fused records are garbled");
    }

    #[test]
    fn median_of_handles_empty_odd_even() {
        assert_eq!(median_of(&[]), 0);
        assert_eq!(median_of(&[7]), 7);
        assert_eq!(median_of(&[1, 9, 5]), 5);
        assert_eq!(median_of(&[1, 3]), 2);
        assert_eq!(median_of(&[u64::MAX, u64::MAX]), u64::MAX, "no overflow");
    }

    #[test]
    fn trends_group_by_model_and_engine_and_flag_regressions() {
        let mut records = vec![
            sample("SPV", 1_000, 1),
            sample("SPV", 1_100, 2),
            sample("SPV", 1_050, 3),
            sample("TWC", 500, 1),
            sample("TWC", 520, 2),
        ];
        // A degraded run on a different engine forms its own group.
        let mut deg = sample("SPV", 90_000, 4);
        deg.engine = "sse".into();
        deg.outcome = outcome::DEGRADED.into();
        records.push(deg);
        // Failed and quarantined runs carry no timing signal.
        let mut failed = sample("SPV", 0, 5);
        failed.outcome = outcome::FAILED.into();
        records.push(failed);

        let trends = compute_trends(&records);
        assert_eq!(trends.len(), 3, "SPV/accmos, SPV/sse, TWC/accmos");
        let spv = trends.iter().find(|t| t.model == "SPV" && t.engine == "accmos").unwrap();
        assert_eq!(spv.runs, 3);
        assert_eq!(spv.median.run_us, 1_050);
        assert_eq!(spv.latest_run_us, 1_050, "latest by timestamp");
        assert_eq!(spv.baseline_run_us, Some(1_050), "median of 1000 and 1100");
        let twc = trends.iter().find(|t| t.model == "TWC").unwrap();
        assert_eq!(twc.latest_run_us, 520);
        assert_eq!(twc.baseline_run_us, Some(500));
        assert!((twc.regress_pct.unwrap() - 4.0).abs() < 1e-9);

        // Within 10%: gate passes. Artificially slowed run: gate trips.
        assert!(check_regressions(&trends, 10.0).is_empty());
        records.push(sample("TWC", 5_000, 9));
        let trends = compute_trends(&records);
        let violations = check_regressions(&trends, 10.0);
        assert_eq!(violations.len(), 1, "slowed TWC run flagged: {violations:?}");
        assert!(violations[0].contains("TWC"));
    }

    #[test]
    fn latest_cohort_excludes_same_millisecond_siblings_from_baseline() {
        // A double-batch ledger: the baseline batch appends 3 records in
        // one millisecond, the (5× slower) latest batch appends 4 records
        // in another. The old single-"latest" logic compared one slow
        // record against a baseline containing its own 3 siblings, which
        // diluted the regression below a 100% gate. The cohort logic
        // compares median(latest batch) vs median(everything older).
        let mut records = Vec::new();
        for _ in 0..3 {
            records.push(sample("SPV", 1_000, 10));
        }
        for _ in 0..4 {
            records.push(sample("SPV", 5_000, 20));
        }
        let trends = compute_trends(&records);
        assert_eq!(trends.len(), 1);
        let t = &trends[0];
        assert_eq!(t.latest_run_us, 5_000, "median over the latest cohort");
        assert_eq!(t.baseline_run_us, Some(1_000), "siblings stay out of the baseline");
        assert!((t.regress_pct.unwrap() - 400.0).abs() < 1e-9);
        assert_eq!(
            check_regressions(&trends, 100.0).len(),
            1,
            "a 5× slowdown must trip a 100% gate even when batched"
        );
        // When every sample shares the newest timestamp there is nothing
        // to compare against: no baseline, gate silent.
        let only_batch: Vec<RunRecord> = (0..3).map(|_| sample("TWC", 700, 5)).collect();
        let trends = compute_trends(&only_batch);
        assert_eq!(trends[0].baseline_run_us, None);
        assert!(check_regressions(&trends, 0.0).is_empty());
    }

    #[test]
    fn lane_configs_form_separate_trends() {
        // Scalar and lane-8 runs of the same model+engine must never
        // share a baseline: a lane-8 run is ~8 vectors of work per
        // record and would look like a huge regression against scalar.
        let mut records = vec![sample("SPV", 1_000, 1), sample("SPV", 1_010, 2)];
        let mut lane = sample("SPV", 3_000, 3);
        lane.lanes = 8;
        records.push(lane.clone());
        lane.ts_ms = 4;
        records.push(lane);
        let trends = compute_trends(&records);
        assert_eq!(trends.len(), 2, "scalar and lane-8 groups");
        let scalar = trends.iter().find(|t| t.lanes == 1).unwrap();
        let lane8 = trends.iter().find(|t| t.lanes == 8).unwrap();
        assert_eq!(scalar.engine_key(), "accmos");
        assert_eq!(lane8.engine_key(), "accmos@8");
        assert_eq!(scalar.latest_run_us, 1_010);
        assert_eq!(lane8.latest_run_us, 3_000);
        assert!(
            check_regressions(&trends, 50.0).is_empty(),
            "no cross-contamination between lane configs"
        );
    }

    #[test]
    fn lanes_round_trip_and_default_to_scalar_for_old_records() {
        let mut r = RunRecord::new("run", "SPV");
        r.lanes = 8;
        let back = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back.lanes, 8);
        // A pre-lane-schema line (no "lanes" key) parses as scalar.
        let old = r#"{"schema":1,"model":"M","outcome":"ok","run_us":42}"#;
        assert_eq!(RunRecord::from_json(old).unwrap().lanes, 1);
    }

    #[test]
    fn single_sample_has_no_baseline_and_never_trips_the_gate() {
        let trends = compute_trends(&[sample("A", 123, 1)]);
        assert_eq!(trends.len(), 1);
        assert_eq!(trends[0].baseline_run_us, None);
        assert_eq!(trends[0].regress_pct, None);
        assert!(check_regressions(&trends, 0.0).is_empty());
    }

    #[test]
    fn rss_and_prof_round_trip_and_are_omitted_when_empty() {
        let mut r = RunRecord::new("run", "SPV");
        r.outcome = outcome::OK.into();
        let line = r.to_json();
        assert!(!line.contains("peak_rss_kb"), "zero RSS omitted: {line}");
        assert!(!line.contains("\"prof\""), "empty prof omitted: {line}");
        r.peak_rss_kb = 10_240;
        r.prof = "M_Add=500:100,fused:M_Gain+4=90:100".into();
        let back = RunRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back.peak_rss_kb, 10_240);
        assert_eq!(back.prof, r.prof);
        // Pre-schema lines parse with the defaults.
        let old = r#"{"schema":1,"model":"M","outcome":"ok","run_us":42}"#;
        let old = RunRecord::from_json(old).unwrap();
        assert_eq!(old.peak_rss_kb, 0);
        assert!(old.prof.is_empty());
    }

    #[test]
    fn profile_string_round_trips_and_skips_garbage() {
        let profile = vec![
            accmos_ir::ActorProfile { actor: "M_Add".into(), ns: 500, calls: 100, timed: 2 },
            accmos_ir::ActorProfile {
                actor: "fused:M_Gain+4".into(),
                ns: 90,
                calls: 100,
                timed: 2,
            },
            accmos_ir::ActorProfile { actor: "M_Out".into(), ns: 0, calls: 0, timed: 0 },
        ];
        let s = encode_profile(&profile);
        assert_eq!(decode_profile(&s), profile);
        assert!(decode_profile("").is_empty());
        assert_eq!(decode_profile("junk,M_A=1:2,=3:4,M_B=x:1,M_C=1:2:3:4").len(), 1);
        // Two-counter entries predate sampled timing: every call was timed.
        assert_eq!(decode_profile("M_A=1:2")[0].timed, 2);
    }

    #[test]
    fn tracer_records_spans_and_builds_containment_tree() {
        let tracer = Tracer::new();
        tracer.span("pipeline", "run", 0, 1_000, 0);
        tracer.span("supervisor", "attempt 0", 100, 500, 0);
        tracer.span("supervisor", "poll", 150, 100, 0);
        tracer.span("pipeline", "other-track", 0, 2_000, 1);
        let tree = tracer.tree();
        // Track 0: run ⊃ attempt 0 ⊃ poll; track 1: a separate root.
        assert_eq!(tree.len(), 2);
        let run = tree.iter().find(|n| n.span.name == "run").unwrap();
        assert_eq!(run.children.len(), 1);
        assert_eq!(run.children[0].span.name, "attempt 0");
        assert_eq!(run.children[0].children[0].span.name, "poll");
        let other = tree.iter().find(|n| n.span.name == "other-track").unwrap();
        assert!(other.children.is_empty(), "containment never crosses tracks");
    }

    #[test]
    fn tracer_profile_leaves_lay_end_to_end() {
        let tracer = Tracer::new();
        let profile = vec![
            accmos_ir::ActorProfile { actor: "M_A".into(), ns: 5_000, calls: 10, timed: 1 },
            accmos_ir::ActorProfile { actor: "M_B".into(), ns: 3_000, calls: 10, timed: 1 },
        ];
        tracer.record_profile(100, 7, &profile);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].cat, "actor");
        assert_eq!((spans[0].start_us, spans[0].dur_us), (100, 5));
        assert_eq!((spans[1].start_us, spans[1].dur_us), (105, 3));
        assert_eq!(spans[1].args[1], ("calls".to_owned(), "10".to_owned()));
    }

    #[test]
    fn chrome_json_is_well_formed_and_escaped() {
        let tracer = Tracer::new();
        tracer.record(TraceSpan {
            name: "needs \"escaping\"\n".into(),
            cat: "pipeline".into(),
            start_us: 1,
            dur_us: 2,
            tid: 3,
            args: vec![("key".into(), "va\"lue".into())],
        });
        tracer.span("actor", "M_Add", 10, 20, 3);
        let json = tracer.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\\\"escaping\\\"\\n"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"actor\""));
        // The flat-object parser rejects nesting, so validate shape by
        // balance instead: every brace and bracket closes.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        // A cloned tracer shares the buffer.
        let clone = tracer.clone();
        clone.span("bench", "extra", 0, 1, 0);
        assert_eq!(tracer.spans().len(), 3);
    }

    #[test]
    fn phase_ordinals_are_dense_and_named() {
        let mut p = PhaseMicros::default();
        for i in 0..PhaseMicros::NAMES.len() {
            p.set(i, (i as u64 + 1) * 10);
        }
        for i in 0..PhaseMicros::NAMES.len() {
            assert_eq!(p.get(i), (i as u64 + 1) * 10);
            assert!(!PhaseMicros::NAMES[i].is_empty());
        }
        assert_eq!(p.total_us(), (1..=7).map(|i| i * 10).sum::<u64>());
    }
}
