//! Compiling generated simulators.
//!
//! The paper compiles the synthesized code with GCC at `-O3` (§4). The
//! [`Compiler`] writes the generated files to a build directory, invokes
//! the system C compiler with the required flags (`-fwrapv` pins the
//! integer wrap semantics the diagnosis templates rely on; `-lm` links the
//! math library), and returns a runnable [`crate::CompiledSimulator`].

use crate::cache::BuildCache;
use crate::error::BackendError;
use crate::run::CompiledSimulator;
use accmos_codegen::GeneratedProgram;
use accmos_ir::source_digest_hex;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

/// Optimization level passed to the C compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// `-O0` — the Rapid Accelerator configuration.
    O0,
    /// `-O1`
    O1,
    /// `-O2`
    O2,
    /// `-O3` — the AccMoS configuration (paper §4).
    #[default]
    O3,
}

impl OptLevel {
    fn flag(self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
        }
    }
}

/// A C compiler driver.
#[derive(Debug, Clone)]
pub struct Compiler {
    cc: String,
    cc_version: String,
    opt: OptLevel,
    work_dir: Option<PathBuf>,
    cache: Option<BuildCache>,
}

static BUILD_SEQ: AtomicU64 = AtomicU64::new(0);

/// Flags always passed to the C compiler, part of the cache key: a change
/// here must not serve executables built with the old flag set.
const FIXED_CFLAGS: [&str; 2] = ["-fwrapv", "-std=gnu11"];

/// Extra flags for the shared-object artifact ([`Compiler::compile_shared`]),
/// part of its cache key — a `.so` and an executable built from the same
/// sources never share a cache entry.
const SHARED_CFLAGS: [&str; 2] = ["-shared", "-fPIC"];

/// A generated simulator compiled as a shared object, ready for
/// [`crate::DylibRunner`] to load in-process.
#[derive(Debug, Clone)]
pub struct CompiledDylib {
    dir: PathBuf,
    so: PathBuf,
    compile_time: std::time::Duration,
    cache_hit: bool,
}

impl CompiledDylib {
    /// The build directory holding the generated sources and the `.so`.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shared-object path.
    pub fn so(&self) -> &Path {
        &self.so
    }

    /// Wall-clock time spent compiling — or, on a build-cache hit, time
    /// spent fetching the cached artifact.
    pub fn compile_time(&self) -> std::time::Duration {
        self.compile_time
    }

    /// Whether this artifact came out of the [`BuildCache`] without
    /// invoking the C compiler.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Remove the build directory.
    pub fn clean(&self) {
        clean_build_dir(&self.dir);
    }
}

impl Compiler {
    /// Locate a system C compiler (`cc`, then `gcc`) and record its
    /// `--version` banner (part of the build-cache key, so a toolchain
    /// upgrade never serves stale executables).
    ///
    /// The compiler starts with the default [`BuildCache`] enabled; use
    /// [`Compiler::without_cache`] to force every compile through the
    /// C compiler.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::CompilerNotFound`] if neither responds to
    /// `--version`.
    pub fn detect() -> Result<Compiler, BackendError> {
        let candidates = ["cc", "gcc"];
        for cand in candidates {
            let Ok(out) = Command::new(cand).arg("--version").output() else {
                continue;
            };
            if out.status.success() {
                let banner = String::from_utf8_lossy(&out.stdout);
                let version = banner.lines().next().unwrap_or("").trim().to_owned();
                return Ok(Compiler {
                    cc: cand.to_owned(),
                    cc_version: version,
                    opt: OptLevel::default(),
                    work_dir: None,
                    cache: Some(BuildCache::new()),
                });
            }
        }
        Err(BackendError::CompilerNotFound {
            tried: candidates.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Builder-style: set the optimization level.
    pub fn with_opt(mut self, opt: OptLevel) -> Compiler {
        self.opt = opt;
        self
    }

    /// Builder-style: build under `dir` instead of a fresh temp directory.
    pub fn with_work_dir(mut self, dir: impl Into<PathBuf>) -> Compiler {
        self.work_dir = Some(dir.into());
        self
    }

    /// Builder-style: use `cache` for compiled artifacts (replacing the
    /// default cache).
    pub fn with_cache(mut self, cache: BuildCache) -> Compiler {
        self.cache = Some(cache);
        self
    }

    /// Builder-style: disable the build cache — every compile invokes the
    /// C compiler. Paper-faithful timing harnesses use this so reported
    /// compile times are cold.
    pub fn without_cache(mut self) -> Compiler {
        self.cache = None;
        self
    }

    /// The build cache in use, if any.
    pub fn cache(&self) -> Option<&BuildCache> {
        self.cache.as_ref()
    }

    /// The compiler executable name.
    pub fn cc(&self) -> &str {
        &self.cc
    }

    /// The first line of the compiler's `--version` output.
    pub fn cc_version(&self) -> &str {
        &self.cc_version
    }

    /// The content key a program compiles under: a digest of every
    /// generated file (name and contents), the compiler identity and
    /// version, the optimization level and the fixed flag set.
    pub fn cache_key(&self, program: &GeneratedProgram) -> String {
        let mut parts: Vec<Vec<u8>> = vec![
            self.cc.clone().into_bytes(),
            self.cc_version.clone().into_bytes(),
            self.opt.flag().as_bytes().to_vec(),
        ];
        for flag in FIXED_CFLAGS {
            parts.push(flag.as_bytes().to_vec());
        }
        for (name, contents) in program.files() {
            parts.push(name.into_bytes());
            parts.push(contents.as_bytes().to_vec());
        }
        source_digest_hex(parts)
    }

    /// Write the program's files into a build directory and compile them —
    /// or, when the configured [`BuildCache`] already holds an executable
    /// built from byte-identical sources with this exact compiler
    /// configuration, copy that executable into the build directory
    /// without invoking the C compiler at all.
    ///
    /// Returns the compiled simulator together with the wall-clock time
    /// spent inside the compiler (the paper reports AccMoS times that
    /// include compilation; the harness reports both). On a cache hit the
    /// reported time is the artifact-fetch time and
    /// [`CompiledSimulator::cache_hit`] returns `true`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and compiler failures (with captured stderr).
    /// Cache *store* failures are swallowed — they only cost a future
    /// recompile.
    pub fn compile(&self, program: &GeneratedProgram) -> Result<CompiledSimulator, BackendError> {
        let start = std::time::Instant::now();
        let dir = match &self.work_dir {
            Some(d) => d.clone(),
            None => std::env::temp_dir().join(format!(
                "accmos-build-{}-{}",
                std::process::id(),
                BUILD_SEQ.fetch_add(1, Ordering::Relaxed)
            )),
        };
        std::fs::create_dir_all(&dir).map_err(|source| BackendError::Io {
            path: dir.clone(),
            source,
        })?;

        let mut c_file = None;
        for (name, contents) in program.files() {
            let path = dir.join(&name);
            std::fs::write(&path, contents)
                .map_err(|source| BackendError::Io { path: path.clone(), source })?;
            if name.ends_with(".c") {
                c_file = Some(path);
            }
        }
        let c_file = c_file.expect("generated program has a .c file");
        let exe = dir.join("sim");

        let key = self.cache.as_ref().map(|_| self.cache_key(program));
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(cached_exe) = cache.lookup(key) {
                // `fs::copy` carries the mode bits, so the copy stays
                // executable. A racing eviction surfaces here as an I/O
                // error; fall through to a real compile in that case.
                if std::fs::copy(&cached_exe, &exe).is_ok() {
                    return Ok(CompiledSimulator::new(
                        program.clone(),
                        dir,
                        exe,
                        start.elapsed(),
                        true,
                    ));
                }
            }
        }

        let cc_start = std::time::Instant::now();
        let output = Command::new(&self.cc)
            .arg(self.opt.flag())
            .args(FIXED_CFLAGS)
            .arg("-o")
            .arg(&exe)
            .arg(&c_file)
            .arg("-lm")
            .current_dir(&dir)
            .output()
            .map_err(|source| BackendError::Io { path: PathBuf::from(&self.cc), source })?;
        let compile_time = cc_start.elapsed();

        if !output.status.success() {
            return Err(BackendError::CompileFailed {
                command: format!(
                    "{} {} {} -o {} {} -lm",
                    self.cc,
                    self.opt.flag(),
                    FIXED_CFLAGS.join(" "),
                    exe.display(),
                    c_file.display()
                ),
                stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
            });
        }
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            let _ = cache.store(key, &exe);
        }
        Ok(CompiledSimulator::new(program.clone(), dir, exe, compile_time, false))
    }

    /// The content key a program's shared-object build caches under: the
    /// executable key's inputs plus the shared-object flag set, so `.so`
    /// and executable artifacts never collide.
    pub fn shared_cache_key(&self, program: &GeneratedProgram) -> String {
        let mut parts: Vec<Vec<u8>> = vec![
            self.cc.clone().into_bytes(),
            self.cc_version.clone().into_bytes(),
            self.opt.flag().as_bytes().to_vec(),
        ];
        for flag in FIXED_CFLAGS.iter().chain(SHARED_CFLAGS.iter()) {
            parts.push(flag.as_bytes().to_vec());
        }
        for (name, contents) in program.files() {
            parts.push(name.into_bytes());
            parts.push(contents.as_bytes().to_vec());
        }
        source_digest_hex(parts)
    }

    /// Compile the program as a position-independent shared object (same
    /// sources, same optimization level, plus `-shared -fPIC`) for
    /// in-process loading through [`crate::DylibRunner`]. Cached under
    /// [`Compiler::shared_cache_key`] exactly like [`Compiler::compile`]
    /// caches executables.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and compiler failures. Cache *store*
    /// failures are swallowed.
    pub fn compile_shared(
        &self,
        program: &GeneratedProgram,
    ) -> Result<CompiledDylib, BackendError> {
        let start = std::time::Instant::now();
        let dir = match &self.work_dir {
            Some(d) => d.clone(),
            None => std::env::temp_dir().join(format!(
                "accmos-build-{}-{}",
                std::process::id(),
                BUILD_SEQ.fetch_add(1, Ordering::Relaxed)
            )),
        };
        std::fs::create_dir_all(&dir)
            .map_err(|source| BackendError::Io { path: dir.clone(), source })?;

        let mut c_file = None;
        for (name, contents) in program.files() {
            let path = dir.join(&name);
            std::fs::write(&path, contents)
                .map_err(|source| BackendError::Io { path: path.clone(), source })?;
            if name.ends_with(".c") {
                c_file = Some(path);
            }
        }
        let c_file = c_file.expect("generated program has a .c file");
        let so = dir.join("sim.so");

        let key = self.cache.as_ref().map(|_| self.shared_cache_key(program));
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(cached_so) = cache.lookup(key) {
                if std::fs::copy(&cached_so, &so).is_ok() {
                    return Ok(CompiledDylib {
                        dir,
                        so,
                        compile_time: start.elapsed(),
                        cache_hit: true,
                    });
                }
            }
        }

        let cc_start = std::time::Instant::now();
        let output = Command::new(&self.cc)
            .arg(self.opt.flag())
            .args(FIXED_CFLAGS)
            .args(SHARED_CFLAGS)
            .arg("-o")
            .arg(&so)
            .arg(&c_file)
            .arg("-lm")
            .current_dir(&dir)
            .output()
            .map_err(|source| BackendError::Io { path: PathBuf::from(&self.cc), source })?;
        let compile_time = cc_start.elapsed();

        if !output.status.success() {
            return Err(BackendError::CompileFailed {
                command: format!(
                    "{} {} {} {} -o {} {} -lm",
                    self.cc,
                    self.opt.flag(),
                    FIXED_CFLAGS.join(" "),
                    SHARED_CFLAGS.join(" "),
                    so.display(),
                    c_file.display()
                ),
                stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
            });
        }
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            let _ = cache.store(key, &so);
        }
        Ok(CompiledDylib { dir, so, compile_time, cache_hit: false })
    }
}

/// Remove a build directory created by [`Compiler::compile`].
pub fn clean_build_dir(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

/// Fixed flags passed to `rustc`, part of the rust cache key: a change
/// here must not serve executables built with the old flag set.
const RUST_FIXED_FLAGS: [&str; 3] = ["-O", "--edition", "2021"];

/// The first line of `rustc --version`, probed once per process (part of
/// the rust build-cache key, so a toolchain upgrade never serves stale
/// executables). `None` when rustc is missing — the compile itself will
/// then report the real spawn error.
fn rustc_version() -> Option<&'static str> {
    static VERSION: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    VERSION
        .get_or_init(|| {
            let out = Command::new("rustc").arg("--version").output().ok()?;
            if !out.status.success() {
                return None;
            }
            let banner = String::from_utf8_lossy(&out.stdout);
            Some(banner.lines().next().unwrap_or("").trim().to_owned())
        })
        .as_deref()
}

/// The content key a rust program compiles under: a digest of the
/// generated source, the `rustc --version` banner and the fixed flag set.
/// `None` when rustc cannot be probed.
pub fn rust_cache_key(program: &accmos_codegen::GeneratedRustProgram) -> Option<String> {
    let version = rustc_version()?;
    let mut parts: Vec<Vec<u8>> = vec![b"rustc".to_vec(), version.as_bytes().to_vec()];
    for flag in RUST_FIXED_FLAGS {
        parts.push(flag.as_bytes().to_vec());
    }
    parts.push(program.main_rs.as_bytes().to_vec());
    Some(source_digest_hex(parts))
}

/// Compile a [`accmos_codegen::GeneratedRustProgram`] with `rustc -O`
/// (the ablation backend of the paper's §5 extensibility discussion).
///
/// Returns the executable path, the build directory and the compile time.
/// Every call is a cold rustc compile; harnesses that rerun the same
/// program should use [`compile_rust_cached`].
///
/// # Errors
///
/// Propagates I/O errors and rustc failures.
pub fn compile_rust(
    program: &accmos_codegen::GeneratedRustProgram,
) -> Result<(PathBuf, PathBuf, std::time::Duration), BackendError> {
    compile_rust_cached(program, None).map(|(exe, dir, time, _)| (exe, dir, time))
}

/// [`compile_rust`] routed through a [`BuildCache`]: when the cache holds
/// an executable built from a byte-identical `sim.rs` by this exact rustc
/// version and flag set, copy it into a fresh build directory without
/// invoking rustc at all.
///
/// Returns the executable path, the build directory, the wall-clock
/// compile (or artifact-fetch) time and whether the executable came from
/// the cache.
///
/// # Errors
///
/// Propagates I/O errors and rustc failures. Cache *store* failures are
/// swallowed — they only cost a future recompile.
pub fn compile_rust_cached(
    program: &accmos_codegen::GeneratedRustProgram,
    cache: Option<&BuildCache>,
) -> Result<(PathBuf, PathBuf, std::time::Duration, bool), BackendError> {
    let start = std::time::Instant::now();
    let dir = std::env::temp_dir().join(format!(
        "accmos-rust-{}-{}",
        std::process::id(),
        BUILD_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir)
        .map_err(|source| BackendError::Io { path: dir.clone(), source })?;
    let rs = dir.join("sim.rs");
    std::fs::write(&rs, &program.main_rs)
        .map_err(|source| BackendError::Io { path: rs.clone(), source })?;
    let exe = dir.join("sim");

    let key = cache.and_then(|_| rust_cache_key(program));
    if let (Some(cache), Some(key)) = (cache, &key) {
        if let Some(cached_exe) = cache.lookup(key) {
            // `fs::copy` carries the mode bits; a racing eviction falls
            // through to a real compile.
            if std::fs::copy(&cached_exe, &exe).is_ok() {
                return Ok((exe, dir, start.elapsed(), true));
            }
        }
    }

    let rustc_start = std::time::Instant::now();
    let output = Command::new("rustc")
        .args(RUST_FIXED_FLAGS)
        .arg("-o")
        .arg(&exe)
        .arg(&rs)
        .output()
        .map_err(|source| BackendError::Io { path: PathBuf::from("rustc"), source })?;
    let elapsed = rustc_start.elapsed();
    if !output.status.success() {
        return Err(BackendError::CompileFailed {
            command: format!(
                "rustc {} -o {} {}",
                RUST_FIXED_FLAGS.join(" "),
                exe.display(),
                rs.display()
            ),
            stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
        });
    }
    if let (Some(cache), Some(key)) = (cache, &key) {
        let _ = cache.store(key, &exe);
    }
    Ok((exe, dir, elapsed, false))
}
