//! Compiling generated simulators.
//!
//! The paper compiles the synthesized code with GCC at `-O3` (§4). The
//! [`Compiler`] writes the generated files to a build directory, invokes
//! the system C compiler with the required flags (`-fwrapv` pins the
//! integer wrap semantics the diagnosis templates rely on; `-lm` links the
//! math library), and returns a runnable [`crate::CompiledSimulator`].

use crate::error::BackendError;
use crate::run::CompiledSimulator;
use accmos_codegen::GeneratedProgram;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

/// Optimization level passed to the C compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// `-O0` — the Rapid Accelerator configuration.
    O0,
    /// `-O1`
    O1,
    /// `-O2`
    O2,
    /// `-O3` — the AccMoS configuration (paper §4).
    #[default]
    O3,
}

impl OptLevel {
    fn flag(self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
        }
    }
}

/// A C compiler driver.
#[derive(Debug, Clone)]
pub struct Compiler {
    cc: String,
    opt: OptLevel,
    work_dir: Option<PathBuf>,
}

static BUILD_SEQ: AtomicU64 = AtomicU64::new(0);

impl Compiler {
    /// Locate a system C compiler (`cc`, then `gcc`).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::CompilerNotFound`] if neither responds to
    /// `--version`.
    pub fn detect() -> Result<Compiler, BackendError> {
        let candidates = ["cc", "gcc"];
        for cand in candidates {
            if Command::new(cand)
                .arg("--version")
                .output()
                .map(|o| o.status.success())
                .unwrap_or(false)
            {
                return Ok(Compiler {
                    cc: cand.to_owned(),
                    opt: OptLevel::default(),
                    work_dir: None,
                });
            }
        }
        Err(BackendError::CompilerNotFound {
            tried: candidates.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Builder-style: set the optimization level.
    pub fn with_opt(mut self, opt: OptLevel) -> Compiler {
        self.opt = opt;
        self
    }

    /// Builder-style: build under `dir` instead of a fresh temp directory.
    pub fn with_work_dir(mut self, dir: impl Into<PathBuf>) -> Compiler {
        self.work_dir = Some(dir.into());
        self
    }

    /// The compiler executable name.
    pub fn cc(&self) -> &str {
        &self.cc
    }

    /// Write the program's files into a build directory and compile them.
    ///
    /// Returns the compiled simulator together with the wall-clock time
    /// spent inside the compiler (the paper reports AccMoS times that
    /// include compilation; the harness reports both).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and compiler failures (with captured stderr).
    pub fn compile(&self, program: &GeneratedProgram) -> Result<CompiledSimulator, BackendError> {
        let dir = match &self.work_dir {
            Some(d) => d.clone(),
            None => std::env::temp_dir().join(format!(
                "accmos-build-{}-{}",
                std::process::id(),
                BUILD_SEQ.fetch_add(1, Ordering::Relaxed)
            )),
        };
        std::fs::create_dir_all(&dir).map_err(|source| BackendError::Io {
            path: dir.clone(),
            source,
        })?;

        let mut c_file = None;
        for (name, contents) in program.files() {
            let path = dir.join(&name);
            std::fs::write(&path, contents)
                .map_err(|source| BackendError::Io { path: path.clone(), source })?;
            if name.ends_with(".c") {
                c_file = Some(path);
            }
        }
        let c_file = c_file.expect("generated program has a .c file");
        let exe = dir.join("sim");

        let start = std::time::Instant::now();
        let output = Command::new(&self.cc)
            .arg(self.opt.flag())
            .arg("-fwrapv")
            .arg("-std=gnu11")
            .arg("-o")
            .arg(&exe)
            .arg(&c_file)
            .arg("-lm")
            .current_dir(&dir)
            .output()
            .map_err(|source| BackendError::Io { path: PathBuf::from(&self.cc), source })?;
        let compile_time = start.elapsed();

        if !output.status.success() {
            return Err(BackendError::CompileFailed {
                command: format!(
                    "{} {} -fwrapv -std=gnu11 -o {} {} -lm",
                    self.cc,
                    self.opt.flag(),
                    exe.display(),
                    c_file.display()
                ),
                stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
            });
        }
        Ok(CompiledSimulator::new(program.clone(), dir, exe, compile_time))
    }
}

/// Remove a build directory created by [`Compiler::compile`].
pub fn clean_build_dir(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

/// Compile a [`accmos_codegen::GeneratedRustProgram`] with `rustc -O`
/// (the ablation backend of the paper's §5 extensibility discussion).
///
/// Returns the executable path, the build directory and the compile time.
///
/// # Errors
///
/// Propagates I/O errors and rustc failures.
pub fn compile_rust(
    program: &accmos_codegen::GeneratedRustProgram,
) -> Result<(PathBuf, PathBuf, std::time::Duration), BackendError> {
    let dir = std::env::temp_dir().join(format!(
        "accmos-rust-{}-{}",
        std::process::id(),
        BUILD_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir)
        .map_err(|source| BackendError::Io { path: dir.clone(), source })?;
    let rs = dir.join("sim.rs");
    std::fs::write(&rs, &program.main_rs)
        .map_err(|source| BackendError::Io { path: rs.clone(), source })?;
    let exe = dir.join("sim");
    let start = std::time::Instant::now();
    let output = Command::new("rustc")
        .arg("-O")
        .arg("--edition")
        .arg("2021")
        .arg("-o")
        .arg(&exe)
        .arg(&rs)
        .output()
        .map_err(|source| BackendError::Io { path: PathBuf::from("rustc"), source })?;
    let elapsed = start.elapsed();
    if !output.status.success() {
        return Err(BackendError::CompileFailed {
            command: format!("rustc -O --edition 2021 -o {} {}", exe.display(), rs.display()),
            stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
        });
    }
    Ok((exe, dir, elapsed))
}
