//! Cross-process file leases.
//!
//! One lease implementation shared by everything in this crate that
//! appends to state under a common directory: the [`crate::BuildCache`]
//! (serializing store + evict), the run ledger
//! ([`crate::telemetry::RunLedger`]) and the persistent quarantine store
//! ([`crate::Supervisor::with_state_dir`]). The protocol is the one the
//! build cache has always used:
//!
//! - the lease is a file taken with `create_new` (atomic on every
//!   filesystem we care about);
//! - its content is `"<pid> <millis-since-epoch>"`, so staleness is
//!   content-based — no mtime games — and a holder that crashed is taken
//!   over after [`LOCK_STALE`];
//! - a taker that cannot get the lease within [`LOCK_WAIT`] proceeds
//!   unlocked: every caller's writes are individually atomic (rename or
//!   single `O_APPEND` write), so the lease reduces interleaving, it is
//!   not required for correctness.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// A lease older than this is considered abandoned (holder crashed) and
/// taken over.
pub(crate) const LOCK_STALE: Duration = Duration::from_secs(10);
/// How long to wait for a lease before proceeding unlocked.
pub(crate) const LOCK_WAIT: Duration = Duration::from_secs(5);

/// Removes the lease file on drop, releasing the cross-process lock.
pub(crate) struct LeaseGuard {
    path: PathBuf,
}

impl Drop for LeaseGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Take the lease file at `path`: `create_new` with stale-lease takeover.
/// Returns `None` — proceed unlocked — if the lease cannot be taken
/// within [`LOCK_WAIT`].
pub(crate) fn acquire(path: &Path) -> Option<LeaseGuard> {
    let deadline = Instant::now() + LOCK_WAIT;
    loop {
        match std::fs::OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(mut f) => {
                // pid + wall-clock millis: content-based staleness, so
                // takeover needs no mtime games.
                let _ = write!(f, "{} {}", std::process::id(), now_millis());
                return Some(LeaseGuard { path: path.to_path_buf() });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                if lease_is_stale(path) {
                    // Best-effort takeover; loop back to create_new so
                    // only one of the racing takers wins.
                    let _ = std::fs::remove_file(path);
                    continue;
                }
                if Instant::now() >= deadline {
                    return None;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return None, // e.g. parent dir vanished mid-clear
        }
    }
}

/// Milliseconds since the Unix epoch, for lease timestamps and ledger
/// records.
pub(crate) fn now_millis() -> u128 {
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default().as_millis()
}

/// A lease is stale when its recorded timestamp is older than
/// [`LOCK_STALE`] — or unreadable/garbled, which only happens when the
/// writer died mid-write.
pub(crate) fn lease_is_stale(path: &Path) -> bool {
    let Ok(contents) = std::fs::read_to_string(path) else {
        // Vanished between create_new failing and this read: not stale,
        // just released — the retry loop will take it.
        return false;
    };
    let Some(ts) = contents.split_whitespace().nth(1).and_then(|t| t.parse::<u128>().ok())
    else {
        return true; // garbled lease: writer died mid-write
    };
    now_millis().saturating_sub(ts) > LOCK_STALE.as_millis()
}
