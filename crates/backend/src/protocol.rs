//! The `ACCMOS:` result protocol.
//!
//! Generated simulators print their results as line-oriented records; this
//! module parses them back into an [`accmos_ir::SimulationReport`] so the
//! compiled path is directly comparable with the interpretive engines.

use crate::error::BackendError;
use accmos_ir::{
    ActorProfile, CoverageKind, CoverageSummary, CustomEvent, DataType, DiagnosticEvent,
    DiagnosticKind, Scalar, SignalSample, SimulationReport, Value,
};
use std::time::Duration;

fn bad(line: &str, detail: impl Into<String>) -> BackendError {
    BackendError::Protocol { line: line.to_owned(), detail: detail.into() }
}

fn parse_value(dt: DataType, hexes: &[&str], line: &str) -> Result<Value, BackendError> {
    let mut elems = Vec::with_capacity(hexes.len());
    for h in hexes {
        let bits = u64::from_str_radix(h, 16).map_err(|_| bad(line, format!("bad hex `{h}`")))?;
        elems.push(Scalar::from_bits_u64(dt, bits));
    }
    if elems.is_empty() {
        return Err(bad(line, "empty value"));
    }
    Ok(if elems.len() == 1 { Value::scalar(elems[0]) } else { Value::vector(elems) })
}

/// Parse a simulator's standard output into a report.
///
/// # Errors
///
/// Returns [`BackendError::Protocol`] on malformed records or if the
/// terminating `ACCMOS:END` line is missing. Truncated streams — a
/// missing `ACCMOS:END`, or a final line cut off mid-record (no trailing
/// newline) — are reported with the partial line and a "truncated after N
/// records" detail, so a killed or crashed simulator's output is
/// distinguishable from a protocol bug.
pub fn parse_report(stdout: &str) -> Result<SimulationReport, BackendError> {
    let mut state = ParseState::default();
    // A stream that does not end in a newline was cut off mid-record:
    // the last line is a partial write, not a (possibly malformed) record.
    let ends_clean = stdout.is_empty() || stdout.ends_with('\n');
    let lines: Vec<&str> = stdout.lines().collect();
    let mut last_protocol_line: Option<&str> = None;

    for (i, line) in lines.iter().enumerate() {
        if !line.starts_with("ACCMOS:") {
            continue; // tolerate interleaved non-protocol output
        }
        last_protocol_line = Some(line);
        let partial = !ends_clean && i + 1 == lines.len();
        if let Err(e) = state.apply(line) {
            if partial {
                return Err(bad(
                    line,
                    format!(
                        "stream truncated after {} complete record(s), mid-record: {}",
                        state.records,
                        protocol_detail(&e)
                    ),
                ));
            }
            return Err(e);
        }
    }

    if !state.saw_end {
        return Err(bad(
            last_protocol_line.unwrap_or("<eof>"),
            format!(
                "missing ACCMOS:END (truncated after {} record(s))",
                state.records
            ),
        ));
    }
    state.finish()
}

fn protocol_detail(e: &BackendError) -> String {
    match e {
        BackendError::Protocol { detail, .. } => detail.clone(),
        other => other.to_string(),
    }
}

/// Accumulator for one protocol stream.
#[derive(Default)]
struct ParseState {
    report: Option<SimulationReport>,
    coverage: CoverageSummary,
    saw_cov: bool,
    saw_end: bool,
    /// Lane sub-reports of a lane-parallel stream (empty for scalar).
    lane_reports: Vec<SimulationReport>,
    /// Which lane section the stream is currently inside, if any.
    /// Per-lane records (`DIAG`, `CUSTOM`, `SIGNAL`, `OUT`, `DIGEST`)
    /// route here; everything before the first `LANE` marker — including
    /// the aggregate `DIGEST` — belongs to the top-level report.
    current_lane: Option<usize>,
    /// Complete records parsed so far (for truncation diagnostics).
    records: usize,
}

impl ParseState {
    /// The report that per-lane-capable records should land in: the
    /// current lane's sub-report inside a `LANE` section, else the
    /// top-level report.
    fn target(&mut self) -> &mut SimulationReport {
        let report =
            self.report.get_or_insert_with(|| SimulationReport::new("", "accmos"));
        match self.current_lane {
            Some(l) => &mut self.lane_reports[l],
            None => report,
        }
    }

    fn apply(&mut self, line: &str) -> Result<(), BackendError> {
        self.report.get_or_insert_with(|| SimulationReport::new("", "accmos"));
        let rest = line.strip_prefix("ACCMOS:").expect("caller checked the prefix");
        let fields: Vec<&str> = rest.split_whitespace().collect();
        match fields.first().copied() {
            Some("MODEL") => {
                self.report.as_mut().expect("inserted above").model =
                    fields.get(1).copied().unwrap_or("").to_owned();
            }
            Some("STEPS") => {
                self.report.as_mut().expect("inserted above").steps = fields
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad step count"))?;
            }
            Some("TIME_NS") => {
                let ns: u64 = fields
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad time"))?;
                self.report.as_mut().expect("inserted above").wall =
                    Duration::from_nanos(ns);
            }
            Some("LANES") => {
                let n: usize = fields
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| bad(line, "bad lane count"))?;
                self.lane_reports =
                    (0..n).map(|_| SimulationReport::new("", "accmos")).collect();
            }
            Some("LANE") => {
                let l: usize = fields
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad lane index"))?;
                if l >= self.lane_reports.len() {
                    return Err(bad(
                        line,
                        format!(
                            "lane index {l} out of range (LANES {})",
                            self.lane_reports.len()
                        ),
                    ));
                }
                self.current_lane = Some(l);
            }
            Some("COV") => {
                let coverage = &mut self.coverage;
                let saw_cov = &mut self.saw_cov;
                let metric = fields.get(1).copied().unwrap_or("");
                let kind = CoverageKind::ALL
                    .into_iter()
                    .find(|k| k.ident() == metric)
                    .ok_or_else(|| bad(line, format!("unknown metric `{metric}`")))?;
                let covered: usize = fields
                    .get(2)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad covered count"))?;
                let total: usize = fields
                    .get(3)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad total count"))?;
                let counts = coverage.counts_mut(kind);
                counts.covered = covered;
                counts.total = total;
                *saw_cov = true;
            }
            Some("UNSAT") => {
                let metric = fields.get(1).copied().unwrap_or("");
                let kind = CoverageKind::ALL
                    .into_iter()
                    .find(|k| k.ident() == metric)
                    .ok_or_else(|| bad(line, format!("unknown metric `{metric}`")))?;
                let n: usize = fields
                    .get(2)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad unsatisfiable count"))?;
                self.coverage.set_unsatisfiable(kind, n);
            }
            Some("PROF") => {
                // Self-profiling counters are global (shared across
                // lanes), so they land in the top-level report no matter
                // where they appear in the stream.
                if fields.len() != 5 {
                    return Err(bad(line, "PROF needs 4 fields"));
                }
                let actor = fields[1]
                    .strip_prefix("actor=")
                    .filter(|a| !a.is_empty())
                    .ok_or_else(|| bad(line, "PROF missing actor= field"))?;
                let ns: u64 = fields[2]
                    .strip_prefix("ns=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad PROF ns= field"))?;
                let calls: u64 = fields[3]
                    .strip_prefix("calls=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad PROF calls= field"))?;
                let timed: u64 = fields[4]
                    .strip_prefix("timed=")
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad PROF timed= field"))?;
                self.report
                    .as_mut()
                    .expect("inserted above")
                    .profile
                    .push(ActorProfile { actor: actor.to_owned(), ns, calls, timed });
            }
            Some("DIAG") => {
                if fields.len() != 5 {
                    return Err(bad(line, "DIAG needs 4 fields"));
                }
                let kind = DiagnosticKind::parse_ident(fields[1])
                    .ok_or_else(|| bad(line, format!("unknown diagnostic `{}`", fields[1])))?;
                self.target().diagnostics.push(DiagnosticEvent {
                    actor: fields[2].to_owned(),
                    kind,
                    first_step: fields[3].parse().map_err(|_| bad(line, "bad first step"))?,
                    count: fields[4].parse().map_err(|_| bad(line, "bad count"))?,
                });
            }
            Some("CUSTOM") => {
                if fields.len() != 5 {
                    return Err(bad(line, "CUSTOM needs 4 fields"));
                }
                self.target().custom.push(CustomEvent {
                    name: fields[1].to_owned(),
                    actor: fields[2].to_owned(),
                    first_step: fields[3].parse().map_err(|_| bad(line, "bad first step"))?,
                    count: fields[4].parse().map_err(|_| bad(line, "bad count"))?,
                });
            }
            Some("SIGNAL") => {
                if fields.len() < 5 {
                    return Err(bad(line, "SIGNAL needs at least 4 fields"));
                }
                let dt: DataType =
                    fields[3].parse().map_err(|_| bad(line, "unknown signal dtype"))?;
                let len: usize = fields[4].parse().map_err(|_| bad(line, "bad length"))?;
                if fields.len() != 5 + len {
                    return Err(bad(line, "SIGNAL element count mismatch"));
                }
                let sample = SignalSample {
                    path: fields[1].to_owned(),
                    step: fields[2].parse().map_err(|_| bad(line, "bad step"))?,
                    value: parse_value(dt, &fields[5..], line)?,
                };
                self.target().signal_log.push(sample);
            }
            Some("OUT") => {
                if fields.len() < 4 {
                    return Err(bad(line, "OUT needs at least 3 fields"));
                }
                let dt: DataType =
                    fields[2].parse().map_err(|_| bad(line, "unknown output dtype"))?;
                let width: usize = fields[3].parse().map_err(|_| bad(line, "bad width"))?;
                if fields.len() != 4 + width {
                    return Err(bad(line, "OUT element count mismatch"));
                }
                let out = (fields[1].to_owned(), parse_value(dt, &fields[4..], line)?);
                self.target().final_outputs.push(out);
            }
            Some("DIGEST") => {
                let digest = u64::from_str_radix(
                    fields.get(1).copied().unwrap_or(""),
                    16,
                )
                .map_err(|_| bad(line, "bad digest"))?;
                self.target().output_digest = digest;
            }
            Some("END") => {
                self.saw_end = true;
            }
            other => {
                return Err(bad(line, format!("unknown record `{}`", other.unwrap_or(""))));
            }
        }
        self.records += 1;
        Ok(())
    }

    fn finish(self) -> Result<SimulationReport, BackendError> {
        let mut report =
            self.report.unwrap_or_else(|| SimulationReport::new("", "accmos"));
        if self.saw_cov {
            report.coverage = Some(self.coverage);
        }
        // Diagnostics and custom hits of a lane run arrive per lane; the
        // top-level report aggregates them across lanes (earliest first
        // step, summed counts) and mirrors lane 0's final outputs, so
        // single-report consumers still see what a scalar run over the
        // union of the stimuli would have reported. No-op for scalar runs.
        report.attach_lanes(self.lane_reports);
        // Match the interpretive engines' ordering.
        report.diagnostics.sort_by(|a, b| {
            a.first_step.cmp(&b.first_step).then_with(|| a.actor.cmp(&b.actor))
        });
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
ACCMOS:MODEL CSEV
ACCMOS:STEPS 1000
ACCMOS:TIME_NS 250000000
ACCMOS:COV actor 5 10
ACCMOS:COV cond 1 2
ACCMOS:COV dec 0 4
ACCMOS:COV mcdc 2 8
ACCMOS:DIAG overflow CSEV_Add 740 3
ACCMOS:DIAG divzero CSEV_Div 2 1
ACCMOS:CUSTOM spike CSEV_Add 10 4
ACCMOS:SIGNAL CSEV_Add_out 7 i32 1 ffffffff
ACCMOS:OUT Out i32 1 2a
ACCMOS:DIGEST 00000000deadbeef
ACCMOS:END
";

    #[test]
    fn full_report_roundtrip() {
        let r = parse_report(SAMPLE).unwrap();
        assert_eq!(r.model, "CSEV");
        assert_eq!(r.steps, 1000);
        assert_eq!(r.wall, Duration::from_millis(250));
        let cov = r.coverage.unwrap();
        assert_eq!(cov.counts(CoverageKind::Actor).covered, 5);
        assert_eq!(cov.percent(CoverageKind::Mcdc), 25.0);
        // sorted by first step
        assert_eq!(r.diagnostics[0].actor, "CSEV_Div");
        assert_eq!(r.diagnostics[1].count, 3);
        assert_eq!(r.custom[0].name, "spike");
        assert_eq!(r.signal_log[0].value, Value::scalar(Scalar::I32(-1)));
        assert_eq!(r.final_outputs[0].1, Value::scalar(Scalar::I32(42)));
        assert_eq!(r.output_digest, 0xdead_beef);
    }

    #[test]
    fn missing_end_rejected() {
        let err = parse_report("ACCMOS:MODEL X\n").unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn missing_end_reports_record_count_and_last_line() {
        let err = parse_report("ACCMOS:MODEL X\nACCMOS:STEPS 5\n").unwrap_err();
        let BackendError::Protocol { line, detail } = &err else {
            panic!("expected Protocol error, got {err}");
        };
        assert_eq!(line, "ACCMOS:STEPS 5", "carries the last protocol line seen");
        assert!(detail.contains("truncated after 2 record(s)"), "{detail}");
    }

    #[test]
    fn mid_record_truncation_is_reported_as_truncation() {
        // The stream ends mid-record (no trailing newline): the partial
        // line must surface as truncation with the record count, not as a
        // generic parse failure.
        let text = "ACCMOS:MODEL X\nACCMOS:STEPS 100\nACCMOS:SIGNAL M_Add_out 7 i3";
        let err = parse_report(text).unwrap_err();
        let BackendError::Protocol { line, detail } = &err else {
            panic!("expected Protocol error, got {err}");
        };
        assert_eq!(line, "ACCMOS:SIGNAL M_Add_out 7 i3", "carries the partial line");
        assert!(
            detail.contains("truncated after 2 complete record(s)"),
            "detail should count complete records: {detail}"
        );
        // A *complete* malformed record (trailing newline present) stays a
        // plain parse failure.
        let err = parse_report("ACCMOS:SIGNAL M_Add_out 7 i3\n").unwrap_err();
        assert!(
            !err.to_string().contains("mid-record"),
            "complete lines are not truncation: {err}"
        );
    }

    #[test]
    fn empty_output_is_truncation_at_eof() {
        let err = parse_report("").unwrap_err();
        let BackendError::Protocol { line, detail } = &err else {
            panic!("expected Protocol error, got {err}");
        };
        assert_eq!(line, "<eof>");
        assert!(detail.contains("truncated after 0 record(s)"), "{detail}");
    }

    #[test]
    fn malformed_records_rejected() {
        for bad_line in [
            "ACCMOS:COV bogus 1 2\nACCMOS:END\n",
            "ACCMOS:DIAG overflow X 1\nACCMOS:END\n",
            "ACCMOS:OUT Out i32 2 2a\nACCMOS:END\n",
            "ACCMOS:WHAT 1\nACCMOS:END\n",
            "ACCMOS:DIGEST zz\nACCMOS:END\n",
        ] {
            assert!(parse_report(bad_line).is_err(), "should reject {bad_line}");
        }
    }

    #[test]
    fn prof_records_roundtrip() {
        let text = "\
ACCMOS:MODEL CSEV
ACCMOS:STEPS 100
ACCMOS:PROF actor=CSEV_Add ns=12345 calls=100 timed=2
ACCMOS:PROF actor=fused:CSEV_Gain+5 ns=999 calls=100 timed=2
ACCMOS:PROF actor=CSEV_Idle ns=0 calls=0 timed=0
ACCMOS:END
";
        let r = parse_report(text).unwrap();
        assert_eq!(r.profile.len(), 3);
        assert_eq!(
            r.profile[0],
            ActorProfile { actor: "CSEV_Add".into(), ns: 12345, calls: 100, timed: 2 }
        );
        assert_eq!(r.profile[1].actor, "fused:CSEV_Gain+5");
        assert_eq!(r.profile[2].calls, 0);
    }

    #[test]
    fn prof_records_in_lane_streams_stay_global() {
        // PROF counters are shared across lanes; even a record printed
        // inside a LANE section belongs to the top-level report.
        let text = "\
ACCMOS:MODEL M
ACCMOS:LANES 2
ACCMOS:PROF actor=M_Add ns=10 calls=4 timed=1
ACCMOS:LANE 0
ACCMOS:PROF actor=M_Gain ns=20 calls=4 timed=1
ACCMOS:LANE 1
ACCMOS:END
";
        let r = parse_report(text).unwrap();
        assert_eq!(r.profile.len(), 2);
        assert!(r.lane_reports.iter().all(|l| l.profile.is_empty()));
    }

    #[test]
    fn garbled_prof_records_rejected() {
        for bad_line in [
            "ACCMOS:PROF actor=X ns=1 calls=2\nACCMOS:END\n",
            "ACCMOS:PROF actor=X ns=1 calls=2 timed=3 extra=4\nACCMOS:END\n",
            "ACCMOS:PROF X 1 2 3\nACCMOS:END\n",
            "ACCMOS:PROF actor= ns=1 calls=2 timed=1\nACCMOS:END\n",
            "ACCMOS:PROF actor=X ns=abc calls=2 timed=1\nACCMOS:END\n",
            "ACCMOS:PROF actor=X ns=1 calls=-2 timed=1\nACCMOS:END\n",
            "ACCMOS:PROF actor=X ns=1 calls=2 timed=x\nACCMOS:END\n",
            "ACCMOS:PROF actor=X calls=2 ns=1 timed=1\nACCMOS:END\n",
        ] {
            assert!(parse_report(bad_line).is_err(), "should reject {bad_line}");
        }
    }

    #[test]
    fn non_protocol_lines_tolerated() {
        let text = "WARNING: something\nACCMOS:MODEL M\nACCMOS:STEPS 1\nACCMOS:END\n";
        let r = parse_report(text).unwrap();
        assert_eq!(r.model, "M");
        assert!(r.coverage.is_none());
    }

    #[test]
    fn lane_stream_routes_and_aggregates() {
        let text = "\
ACCMOS:MODEL CSEV
ACCMOS:STEPS 100
ACCMOS:TIME_NS 1000
ACCMOS:LANES 2
ACCMOS:COV actor 5 10
ACCMOS:DIGEST 00000000000000aa
ACCMOS:LANE 0
ACCMOS:DIAG overflow CSEV_Add 7 2
ACCMOS:OUT Out i32 1 1
ACCMOS:DIGEST 0000000000000001
ACCMOS:LANE 1
ACCMOS:DIAG overflow CSEV_Add 3 5
ACCMOS:OUT Out i32 1 2
ACCMOS:DIGEST 0000000000000002
ACCMOS:END
";
        let r = parse_report(text).unwrap();
        assert_eq!(r.lane_width(), 2);
        // The aggregate digest printed before the first LANE marker is
        // the top-level digest; per-lane digests land in the sub-reports.
        assert_eq!(r.output_digest, 0xaa);
        assert_eq!(r.lane_reports[0].output_digest, 1);
        assert_eq!(r.lane_reports[1].output_digest, 2);
        // Lane metadata is copied from the shared header records.
        assert_eq!(r.lane_reports[1].model, "CSEV");
        assert_eq!(r.lane_reports[1].steps, 100);
        // Diagnostics aggregate across lanes: earliest first step, summed
        // counts.
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].first_step, 3);
        assert_eq!(r.diagnostics[0].count, 7);
        assert_eq!(r.lane_reports[0].diagnostics[0].count, 2);
        // Top-level outputs mirror lane 0; coverage stays shared.
        assert_eq!(r.final_outputs[0].1, Value::scalar(Scalar::I32(1)));
        assert_eq!(r.lane_reports[1].final_outputs[0].1, Value::scalar(Scalar::I32(2)));
        assert_eq!(r.coverage.unwrap().counts(CoverageKind::Actor).covered, 5);
        assert!(r.lane_reports[0].coverage.is_none());
    }

    #[test]
    fn lane_index_out_of_range_rejected() {
        let text = "ACCMOS:LANES 2\nACCMOS:LANE 2\nACCMOS:END\n";
        let err = parse_report(text).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        assert!(parse_report("ACCMOS:LANES 0\nACCMOS:END\n").is_err());
    }

    #[test]
    fn scalar_stream_has_no_lane_reports() {
        let r = parse_report(SAMPLE).unwrap();
        assert!(r.lane_reports.is_empty());
        assert_eq!(r.lane_width(), 1);
    }

    #[test]
    fn f64_output_decoding() {
        let bits = 1.5f64.to_bits();
        let text = format!("ACCMOS:OUT Y f64 1 {bits:x}\nACCMOS:END\n");
        let r = parse_report(&text).unwrap();
        assert_eq!(r.final_outputs[0].1, Value::scalar(Scalar::F64(1.5)));
    }
}
