//! The `ACCMOS:` result protocol.
//!
//! Generated simulators print their results as line-oriented records; this
//! module parses them back into an [`accmos_ir::SimulationReport`] so the
//! compiled path is directly comparable with the interpretive engines.

use crate::error::BackendError;
use accmos_ir::{
    CoverageKind, CoverageSummary, CustomEvent, DataType, DiagnosticEvent, DiagnosticKind,
    Scalar, SignalSample, SimulationReport, Value,
};
use std::time::Duration;

fn bad(line: &str, detail: impl Into<String>) -> BackendError {
    BackendError::Protocol { line: line.to_owned(), detail: detail.into() }
}

fn parse_value(dt: DataType, hexes: &[&str], line: &str) -> Result<Value, BackendError> {
    let mut elems = Vec::with_capacity(hexes.len());
    for h in hexes {
        let bits = u64::from_str_radix(h, 16).map_err(|_| bad(line, format!("bad hex `{h}`")))?;
        elems.push(Scalar::from_bits_u64(dt, bits));
    }
    if elems.is_empty() {
        return Err(bad(line, "empty value"));
    }
    Ok(if elems.len() == 1 { Value::scalar(elems[0]) } else { Value::vector(elems) })
}

/// Parse a simulator's standard output into a report.
///
/// # Errors
///
/// Returns [`BackendError::Protocol`] on malformed records or if the
/// terminating `ACCMOS:END` line is missing (truncated output).
pub fn parse_report(stdout: &str) -> Result<SimulationReport, BackendError> {
    let mut report = SimulationReport::new("", "accmos");
    let mut coverage = CoverageSummary::default();
    let mut saw_cov = false;
    let mut saw_end = false;

    for line in stdout.lines() {
        let Some(rest) = line.strip_prefix("ACCMOS:") else {
            continue; // tolerate interleaved non-protocol output
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        match fields.first().copied() {
            Some("MODEL") => {
                report.model = fields.get(1).copied().unwrap_or("").to_owned();
            }
            Some("STEPS") => {
                report.steps = fields
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad step count"))?;
            }
            Some("TIME_NS") => {
                let ns: u64 = fields
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad time"))?;
                report.wall = Duration::from_nanos(ns);
            }
            Some("COV") => {
                let metric = fields.get(1).copied().unwrap_or("");
                let kind = CoverageKind::ALL
                    .into_iter()
                    .find(|k| k.ident() == metric)
                    .ok_or_else(|| bad(line, format!("unknown metric `{metric}`")))?;
                let covered: usize = fields
                    .get(2)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad covered count"))?;
                let total: usize = fields
                    .get(3)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(line, "bad total count"))?;
                let counts = coverage.counts_mut(kind);
                counts.covered = covered;
                counts.total = total;
                saw_cov = true;
            }
            Some("DIAG") => {
                if fields.len() != 5 {
                    return Err(bad(line, "DIAG needs 4 fields"));
                }
                let kind = DiagnosticKind::parse_ident(fields[1])
                    .ok_or_else(|| bad(line, format!("unknown diagnostic `{}`", fields[1])))?;
                report.diagnostics.push(DiagnosticEvent {
                    actor: fields[2].to_owned(),
                    kind,
                    first_step: fields[3].parse().map_err(|_| bad(line, "bad first step"))?,
                    count: fields[4].parse().map_err(|_| bad(line, "bad count"))?,
                });
            }
            Some("CUSTOM") => {
                if fields.len() != 5 {
                    return Err(bad(line, "CUSTOM needs 4 fields"));
                }
                report.custom.push(CustomEvent {
                    name: fields[1].to_owned(),
                    actor: fields[2].to_owned(),
                    first_step: fields[3].parse().map_err(|_| bad(line, "bad first step"))?,
                    count: fields[4].parse().map_err(|_| bad(line, "bad count"))?,
                });
            }
            Some("SIGNAL") => {
                if fields.len() < 5 {
                    return Err(bad(line, "SIGNAL needs at least 4 fields"));
                }
                let dt: DataType =
                    fields[3].parse().map_err(|_| bad(line, "unknown signal dtype"))?;
                let len: usize = fields[4].parse().map_err(|_| bad(line, "bad length"))?;
                if fields.len() != 5 + len {
                    return Err(bad(line, "SIGNAL element count mismatch"));
                }
                report.signal_log.push(SignalSample {
                    path: fields[1].to_owned(),
                    step: fields[2].parse().map_err(|_| bad(line, "bad step"))?,
                    value: parse_value(dt, &fields[5..], line)?,
                });
            }
            Some("OUT") => {
                if fields.len() < 4 {
                    return Err(bad(line, "OUT needs at least 3 fields"));
                }
                let dt: DataType =
                    fields[2].parse().map_err(|_| bad(line, "unknown output dtype"))?;
                let width: usize = fields[3].parse().map_err(|_| bad(line, "bad width"))?;
                if fields.len() != 4 + width {
                    return Err(bad(line, "OUT element count mismatch"));
                }
                report
                    .final_outputs
                    .push((fields[1].to_owned(), parse_value(dt, &fields[4..], line)?));
            }
            Some("DIGEST") => {
                report.output_digest = u64::from_str_radix(
                    fields.get(1).copied().unwrap_or(""),
                    16,
                )
                .map_err(|_| bad(line, "bad digest"))?;
            }
            Some("END") => {
                saw_end = true;
            }
            other => {
                return Err(bad(line, format!("unknown record `{}`", other.unwrap_or(""))));
            }
        }
    }

    if !saw_end {
        return Err(bad("<eof>", "missing ACCMOS:END (truncated output)"));
    }
    if saw_cov {
        report.coverage = Some(coverage);
    }
    // Match the interpretive engines' ordering.
    report.diagnostics.sort_by(|a, b| {
        a.first_step.cmp(&b.first_step).then_with(|| a.actor.cmp(&b.actor))
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
ACCMOS:MODEL CSEV
ACCMOS:STEPS 1000
ACCMOS:TIME_NS 250000000
ACCMOS:COV actor 5 10
ACCMOS:COV cond 1 2
ACCMOS:COV dec 0 4
ACCMOS:COV mcdc 2 8
ACCMOS:DIAG overflow CSEV_Add 740 3
ACCMOS:DIAG divzero CSEV_Div 2 1
ACCMOS:CUSTOM spike CSEV_Add 10 4
ACCMOS:SIGNAL CSEV_Add_out 7 i32 1 ffffffff
ACCMOS:OUT Out i32 1 2a
ACCMOS:DIGEST 00000000deadbeef
ACCMOS:END
";

    #[test]
    fn full_report_roundtrip() {
        let r = parse_report(SAMPLE).unwrap();
        assert_eq!(r.model, "CSEV");
        assert_eq!(r.steps, 1000);
        assert_eq!(r.wall, Duration::from_millis(250));
        let cov = r.coverage.unwrap();
        assert_eq!(cov.counts(CoverageKind::Actor).covered, 5);
        assert_eq!(cov.percent(CoverageKind::Mcdc), 25.0);
        // sorted by first step
        assert_eq!(r.diagnostics[0].actor, "CSEV_Div");
        assert_eq!(r.diagnostics[1].count, 3);
        assert_eq!(r.custom[0].name, "spike");
        assert_eq!(r.signal_log[0].value, Value::scalar(Scalar::I32(-1)));
        assert_eq!(r.final_outputs[0].1, Value::scalar(Scalar::I32(42)));
        assert_eq!(r.output_digest, 0xdead_beef);
    }

    #[test]
    fn missing_end_rejected() {
        let err = parse_report("ACCMOS:MODEL X\n").unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn malformed_records_rejected() {
        for bad_line in [
            "ACCMOS:COV bogus 1 2\nACCMOS:END\n",
            "ACCMOS:DIAG overflow X 1\nACCMOS:END\n",
            "ACCMOS:OUT Out i32 2 2a\nACCMOS:END\n",
            "ACCMOS:WHAT 1\nACCMOS:END\n",
            "ACCMOS:DIGEST zz\nACCMOS:END\n",
        ] {
            assert!(parse_report(bad_line).is_err(), "should reject {bad_line}");
        }
    }

    #[test]
    fn non_protocol_lines_tolerated() {
        let text = "WARNING: something\nACCMOS:MODEL M\nACCMOS:STEPS 1\nACCMOS:END\n";
        let r = parse_report(text).unwrap();
        assert_eq!(r.model, "M");
        assert!(r.coverage.is_none());
    }

    #[test]
    fn f64_output_decoding() {
        let bits = 1.5f64.to_bits();
        let text = format!("ACCMOS:OUT Y f64 1 {bits:x}\nACCMOS:END\n");
        let r = parse_report(&text).unwrap();
        assert_eq!(r.final_outputs[0].1, Value::scalar(Scalar::F64(1.5)));
    }
}
