//! # accmos-backend
//!
//! Compile-and-execute driver for AccMoS-RS generated simulators: locate
//! the system C compiler, build the generated program (`-O3 -fwrapv`, the
//! paper's GCC configuration), run the executable against a test-vector
//! file, and parse its `ACCMOS:` result protocol back into an
//! [`accmos_ir::SimulationReport`].
//!
//! ## Example
//!
//! ```no_run
//! use accmos_backend::{Compiler, RunOptions};
//! use accmos_codegen::{generate, CodegenOptions};
//! use accmos_ir::{DataType, ModelBuilder, Scalar, TestVectors};
//!
//! let mut b = ModelBuilder::new("M");
//! b.inport("In", DataType::I32);
//! b.outport("Out", DataType::I32);
//! b.wire("In", "Out");
//! let pre = accmos_graph::preprocess(&b.build()?)?;
//! let program = generate(&pre, &CodegenOptions::accmos());
//!
//! let sim = Compiler::detect()?.compile(&program)?;
//! let tests = TestVectors::constant("In", Scalar::I32(7), 1);
//! let report = sim.run(100, &tests, &RunOptions::default())?;
//! assert_eq!(report.steps, 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Unsafe is confined to `dylib.rs` (the dlopen FFI for in-process
// simulator execution); every other module stays deny-checked.
#![deny(unsafe_code)]

mod cache;
mod compile;
#[cfg(unix)]
mod dylib;
mod error;
mod lease;
mod protocol;
mod run;
mod supervise;
pub mod telemetry;

pub use cache::{BuildCache, CacheStats};
pub use compile::{clean_build_dir, compile_rust, compile_rust_cached, rust_cache_key, CompiledDylib, Compiler, OptLevel};
#[cfg(unix)]
pub use dylib::{DylibRun, DylibRunner};
pub use error::BackendError;
pub use protocol::parse_report;
pub use run::{run_executable, run_executable_supervised, CompiledSimulator, RunOptions};
pub use supervise::{ExecPolicy, FailureKind, RetryStats, SupervisedRun, Supervisor};
pub use telemetry::{PhaseMicros, RunLedger, RunRecord, TraceNode, TraceSpan, Tracer};

/// The default state directory shared by the build cache, the run ledger
/// and the persistent quarantine store: `$ACCMOS_CACHE_DIR`, else
/// `$XDG_CACHE_HOME/accmos`, else `$HOME/.cache/accmos`, else a temp-dir
/// fallback.
pub fn default_state_dir() -> std::path::PathBuf {
    cache::default_root()
}

#[cfg(test)]
mod tests {
    use super::*;
    use accmos_codegen::{generate, CodegenOptions};
    use accmos_graph::preprocess;
    use accmos_ir::{ActorKind, DataType, DiagnosticKind, ModelBuilder, Scalar, TestVectors, Value};

    fn compile_and_run(
        build: impl FnOnce(&mut ModelBuilder),
        opts: &CodegenOptions,
        steps: u64,
        tests: &TestVectors,
        run_opts: &RunOptions,
    ) -> accmos_ir::SimulationReport {
        let mut b = ModelBuilder::new("M");
        build(&mut b);
        let pre = preprocess(&b.build().unwrap()).unwrap();
        let program = generate(&pre, opts);
        let sim = Compiler::detect().unwrap().compile(&program).unwrap_or_else(|e| {
            panic!("compile failed: {e}\n----\n{}", program.main_c);
        });
        let report = sim.run(steps, tests, run_opts).unwrap();
        sim.clean();
        report
    }

    #[test]
    fn end_to_end_passthrough() {
        let tests = TestVectors::constant("In", Scalar::I32(7), 1);
        let r = compile_and_run(
            |b| {
                b.inport("In", DataType::I32);
                b.outport("Out", DataType::I32);
                b.wire("In", "Out");
            },
            &CodegenOptions::accmos(),
            10,
            &tests,
            &RunOptions::default(),
        );
        assert_eq!(r.steps, 10);
        assert_eq!(r.final_outputs[0].1, Value::scalar(Scalar::I32(7)));
        let cov = r.coverage.unwrap();
        assert_eq!(cov.percent(accmos_ir::CoverageKind::Actor), 100.0);
    }

    #[test]
    fn end_to_end_figure1_overflow() {
        let mut tests = TestVectors::new();
        let big = i32::MAX / 4;
        tests.push_column("A", DataType::I32, vec![Scalar::I32(big)]);
        tests.push_column("B", DataType::I32, vec![Scalar::I32(big)]);
        let r = compile_and_run(
            |b| {
                b.inport("A", DataType::I32);
                b.inport("B", DataType::I32);
                b.actor("AccA", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
                b.actor("AccB", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
                b.actor("Sum", ActorKind::Sum { signs: "++".into() });
                b.outport("Out", DataType::I32);
                b.connect(("A", 0), ("AccA", 0));
                b.connect(("B", 0), ("AccB", 0));
                b.connect(("AccA", 0), ("Sum", 0));
                b.connect(("AccB", 0), ("Sum", 1));
                b.connect(("Sum", 0), ("Out", 0));
            },
            &CodegenOptions::accmos(),
            100,
            &tests,
            &RunOptions { stop_on_diagnostic: true, ..RunOptions::default() },
        );
        assert!(r.has_diagnostic(DiagnosticKind::WrapOnOverflow), "{r}");
        assert!(r.steps < 100, "stopped early at {}", r.steps);
        assert_eq!(
            r.first_diagnostic(DiagnosticKind::WrapOnOverflow).unwrap().actor,
            "M_Sum"
        );
    }

    #[test]
    fn rapid_accelerator_mode_runs_uninstrumented() {
        let tests = TestVectors::constant("In", Scalar::F64(1.5), 1);
        let r = compile_and_run(
            |b| {
                b.inport("In", DataType::F64);
                b.actor("Twice", ActorKind::Gain { gain: Scalar::F64(2.0) });
                b.outport("Out", DataType::F64);
                b.wire("In", "Twice");
                b.wire("Twice", "Out");
            },
            &CodegenOptions::rapid_accelerator(),
            5,
            &tests,
            &RunOptions::default(),
        );
        assert!(r.coverage.is_none());
        assert!(r.diagnostics.is_empty());
        assert_eq!(r.final_outputs[0].1, Value::scalar(Scalar::F64(3.0)));
    }

    #[test]
    fn compiler_detect_reports_name() {
        let cc = Compiler::detect().unwrap();
        assert!(!cc.cc().is_empty());
        assert!(!cc.cc_version().is_empty(), "version banner captured for the cache key");
    }

    fn gain_program(gain: f64) -> accmos_codegen::GeneratedProgram {
        let mut b = ModelBuilder::new("CacheProbe");
        b.inport("In", DataType::F64);
        b.actor("G", ActorKind::Gain { gain: Scalar::F64(gain) });
        b.outport("Out", DataType::F64);
        b.wire("In", "G");
        b.wire("G", "Out");
        let pre = preprocess(&b.build().unwrap()).unwrap();
        generate(&pre, &CodegenOptions::accmos())
    }

    #[test]
    fn second_compile_is_a_cache_hit_and_much_faster() {
        let root = std::env::temp_dir()
            .join(format!("accmos-cache-hit-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = BuildCache::at(&root);
        let cc = Compiler::detect().unwrap().with_cache(cache.clone());
        let program = gain_program(2.0);

        let cold = cc.compile(&program).unwrap();
        assert!(!cold.cache_hit());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 0);

        let warm = cc.compile(&program).unwrap();
        assert!(warm.cache_hit(), "identical program must hit the cache");
        assert_eq!(cache.stats().hits, 1);
        // ISSUE acceptance: the hit skips GCC entirely, so it must be at
        // least 10x faster than the cold compile.
        assert!(
            warm.compile_time() * 10 <= cold.compile_time(),
            "cache hit not >=10x faster: cold {:?}, warm {:?}",
            cold.compile_time(),
            warm.compile_time()
        );

        // The cached executable is byte-for-byte the compiled one, so the
        // two simulators agree on every output digest.
        let tests = TestVectors::constant("In", Scalar::F64(1.5), 3);
        let opts = RunOptions::default();
        let a = cold.run(50, &tests, &opts).unwrap();
        let b = warm.run(50, &tests, &opts).unwrap();
        assert_eq!(a.output_digest, b.output_digest);
        assert_eq!(a.final_outputs, b.final_outputs);

        cold.clean();
        warm.clean();
        cache.clear().unwrap();
    }

    #[test]
    fn cache_distinguishes_programs_and_opt_levels() {
        let root = std::env::temp_dir()
            .join(format!("accmos-cache-key-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = BuildCache::at(&root);
        let cc = Compiler::detect().unwrap().with_cache(cache.clone());

        let k_a = cc.cache_key(&gain_program(2.0));
        let k_b = cc.cache_key(&gain_program(3.0));
        assert_ne!(k_a, k_b, "different sources, different keys");
        let cc_o0 = cc.clone().with_opt(OptLevel::O0);
        assert_ne!(cc.cache_key(&gain_program(2.0)), cc_o0.cache_key(&gain_program(2.0)));
        assert_eq!(k_a, cc.cache_key(&gain_program(2.0)), "keys are deterministic");

        // Different programs never share an entry.
        let a = cc.compile(&gain_program(2.0)).unwrap();
        let b = cc.compile(&gain_program(3.0)).unwrap();
        assert!(!a.cache_hit() && !b.cache_hit());
        assert_eq!(cache.stats().misses, 2);
        a.clean();
        b.clean();
        cache.clear().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn dylib_run_matches_subprocess_run_bit_for_bit() {
        let cc = Compiler::detect().unwrap().without_cache();
        let program = gain_program(2.5);
        let exe = cc.compile(&program).unwrap();
        let dy = cc.compile_shared(&program).unwrap();
        let tests = TestVectors::constant("In", Scalar::F64(1.25), 4);
        let opts = RunOptions::default();

        let sub = exe.run(64, &tests, &opts).unwrap();
        let runner = DylibRunner::for_dylib(&dy);
        let inp = runner.run(64, &tests, &opts, None).unwrap();
        assert_eq!(sub.output_digest, inp.report.output_digest);
        assert_eq!(sub.final_outputs, inp.report.final_outputs);
        assert_eq!(sub.diagnostics, inp.report.diagnostics);
        assert_eq!(sub.coverage, inp.report.coverage);
        assert_eq!(sub.steps, inp.report.steps);

        // A second run of the same artifact works (fresh copy per load),
        // and concurrent runs don't share generated statics.
        let again = runner.run(64, &tests, &opts, None).unwrap();
        assert_eq!(again.report.output_digest, sub.output_digest);
        let digests: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        runner
                            .run(64, &tests, &opts, None)
                            .unwrap()
                            .report
                            .output_digest
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(digests.iter().all(|d| *d == sub.output_digest), "{digests:?}");

        exe.clean();
        dy.clean();
    }

    #[cfg(unix)]
    #[test]
    fn dylib_deadline_maps_to_cooperative_cancel_timeout() {
        // A 5M-step integrator run with a ~zero deadline must stop on the
        // cancel flag and classify as a supervised timeout.
        let mut b = ModelBuilder::new("CancelProbe");
        b.inport("In", DataType::F64);
        b.actor("Acc", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::F64(0.0) });
        b.outport("Out", DataType::F64);
        b.wire("In", "Acc");
        b.wire("Acc", "Out");
        let pre = preprocess(&b.build().unwrap()).unwrap();
        let program = generate(&pre, &CodegenOptions::accmos());
        let cc = Compiler::detect().unwrap().without_cache();
        let dy = cc.compile_shared(&program).unwrap();
        let runner = DylibRunner::for_dylib(&dy);
        let tests = TestVectors::constant("In", Scalar::F64(0.001), 8);
        let err = runner
            .run(
                200_000_000,
                &tests,
                &RunOptions::default(),
                Some(std::time::Duration::from_millis(30)),
            )
            .unwrap_err();
        match err {
            BackendError::Supervised { kind: FailureKind::Timeout, attempts: 1, .. } => {}
            other => panic!("expected a cooperative timeout, got {other:?}"),
        }
        dy.clean();
    }

    #[test]
    fn without_cache_always_invokes_compiler() {
        let cc = Compiler::detect().unwrap().without_cache();
        assert!(cc.cache().is_none());
        let program = gain_program(4.0);
        let a = cc.compile(&program).unwrap();
        let b = cc.compile(&program).unwrap();
        assert!(!a.cache_hit() && !b.cache_hit());
        a.clean();
        b.clean();
    }
}
