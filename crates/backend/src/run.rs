//! Executing compiled simulators.

use crate::error::BackendError;
use crate::protocol::parse_report;
use accmos_codegen::GeneratedProgram;
use accmos_ir::{SimulationReport, TestVectors};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

/// Per-run options for a compiled simulator.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Stop at the end of the first step that produced a diagnostic.
    pub stop_on_diagnostic: bool,
    /// Wall-clock budget; the simulator stops early when exceeded.
    pub time_budget: Option<Duration>,
}

/// A compiled simulation executable.
#[derive(Debug, Clone)]
pub struct CompiledSimulator {
    program: GeneratedProgram,
    dir: PathBuf,
    exe: PathBuf,
    compile_time: Duration,
}

impl CompiledSimulator {
    pub(crate) fn new(
        program: GeneratedProgram,
        dir: PathBuf,
        exe: PathBuf,
        compile_time: Duration,
    ) -> CompiledSimulator {
        CompiledSimulator { program, dir, exe, compile_time }
    }

    /// The build directory holding the generated sources and executable.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The executable path.
    pub fn exe(&self) -> &Path {
        &self.exe
    }

    /// Wall-clock time spent compiling.
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// The generated program this simulator was built from.
    pub fn program(&self) -> &GeneratedProgram {
        &self.program
    }

    /// Run the simulator for `steps` steps against `tests`.
    ///
    /// The test vectors are written to a CSV file in the build directory
    /// and imported by the generated `TestCase_Init` (paper Figure 5).
    /// The reported `wall` time is the simulator's own measurement of its
    /// simulation loop (excluding process start-up and test loading).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures, non-zero simulator exits and protocol
    /// parse errors.
    pub fn run(
        &self,
        steps: u64,
        tests: &TestVectors,
        opts: &RunOptions,
    ) -> Result<SimulationReport, BackendError> {
        let mut cmd = Command::new(&self.exe);
        cmd.arg(steps.to_string());
        if tests.width() > 0 {
            let tc_path = self.dir.join("tests.csv");
            std::fs::write(&tc_path, tests.to_csv())
                .map_err(|source| BackendError::Io { path: tc_path.clone(), source })?;
            cmd.arg("--tests").arg(&tc_path);
        }
        if opts.stop_on_diagnostic {
            cmd.arg("--stop-on-diag");
        }
        if let Some(budget) = opts.time_budget {
            cmd.arg("--budget-ms").arg(budget.as_millis().max(1).to_string());
        }
        let output = cmd.output().map_err(|source| BackendError::Io {
            path: self.exe.clone(),
            source,
        })?;
        if !output.status.success() {
            return Err(BackendError::RunFailed {
                exe: self.exe.clone(),
                detail: format!(
                    "exit status {:?}, stderr: {}",
                    output.status.code(),
                    String::from_utf8_lossy(&output.stderr)
                ),
            });
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        parse_report(&stdout)
    }

    /// Remove the build directory.
    pub fn clean(&self) {
        crate::compile::clean_build_dir(&self.dir);
    }
}

/// Run any compiled simulator executable speaking the `ACCMOS:` protocol
/// (used for the Rust ablation backend).
///
/// # Errors
///
/// Propagates I/O failures, non-zero exits and protocol errors.
pub fn run_executable(
    exe: &Path,
    work_dir: &Path,
    steps: u64,
    tests: &TestVectors,
    opts: &RunOptions,
) -> Result<SimulationReport, BackendError> {
    let mut cmd = Command::new(exe);
    cmd.arg(steps.to_string());
    if tests.width() > 0 {
        let tc_path = work_dir.join("tests.csv");
        std::fs::write(&tc_path, tests.to_csv())
            .map_err(|source| BackendError::Io { path: tc_path.clone(), source })?;
        cmd.arg("--tests").arg(&tc_path);
    }
    if opts.stop_on_diagnostic {
        cmd.arg("--stop-on-diag");
    }
    if let Some(budget) = opts.time_budget {
        cmd.arg("--budget-ms").arg(budget.as_millis().max(1).to_string());
    }
    let output = cmd
        .output()
        .map_err(|source| BackendError::Io { path: exe.to_path_buf(), source })?;
    if !output.status.success() {
        return Err(BackendError::RunFailed {
            exe: exe.to_path_buf(),
            detail: format!(
                "exit status {:?}, stderr: {}",
                output.status.code(),
                String::from_utf8_lossy(&output.stderr)
            ),
        });
    }
    parse_report(&String::from_utf8_lossy(&output.stdout))
}
