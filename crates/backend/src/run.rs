//! Executing compiled simulators.

use crate::error::BackendError;
use crate::protocol::parse_report;
use crate::supervise::{status_signal, tail_str, Supervisor, SupervisedRun};
use accmos_codegen::GeneratedProgram;
use accmos_ir::{SimulationReport, TestVectors};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-run options for a compiled simulator.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Stop at the end of the first step that produced a diagnostic.
    pub stop_on_diagnostic: bool,
    /// Wall-clock budget; the simulator stops early when exceeded.
    pub time_budget: Option<Duration>,
    /// Test vectors for lanes 1..N of a lane-parallel simulator, in lane
    /// order; lane 0 is driven by the primary `tests` argument. Leave
    /// empty for scalar simulators. A lane-N simulator rejects any
    /// `--tests` count other than 0 or N, so the length must be exactly
    /// `lanes - 1` when the model has root inports.
    pub lane_tests: Vec<TestVectors>,
}

/// A compiled simulation executable.
#[derive(Debug, Clone)]
pub struct CompiledSimulator {
    program: GeneratedProgram,
    dir: PathBuf,
    exe: PathBuf,
    compile_time: Duration,
    cache_hit: bool,
}

impl CompiledSimulator {
    pub(crate) fn new(
        program: GeneratedProgram,
        dir: PathBuf,
        exe: PathBuf,
        compile_time: Duration,
        cache_hit: bool,
    ) -> CompiledSimulator {
        CompiledSimulator { program, dir, exe, compile_time, cache_hit }
    }

    /// The build directory holding the generated sources and executable.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The executable path.
    pub fn exe(&self) -> &Path {
        &self.exe
    }

    /// Wall-clock time spent compiling — or, on a build-cache hit, time
    /// spent fetching the cached executable.
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// Whether this simulator came out of the [`crate::BuildCache`]
    /// without invoking the C compiler.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// The generated program this simulator was built from.
    pub fn program(&self) -> &GeneratedProgram {
        &self.program
    }

    /// Run the simulator for `steps` steps against `tests`.
    ///
    /// The test vectors are written to a CSV file in the build directory
    /// and imported by the generated `TestCase_Init` (paper Figure 5).
    /// The reported `wall` time is the simulator's own measurement of its
    /// simulation loop (excluding process start-up and test loading).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures, non-zero simulator exits and protocol
    /// parse errors.
    pub fn run(
        &self,
        steps: u64,
        tests: &TestVectors,
        opts: &RunOptions,
    ) -> Result<SimulationReport, BackendError> {
        self.check_lane_stimulus(tests, opts)?;
        invoke_simulator(&self.exe, &self.dir, steps, tests, opts)
    }

    /// Run the simulator under `supervisor`'s [`crate::ExecPolicy`]:
    /// hard kill timeout, bounded retries with deterministic backoff, and
    /// classified failures.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Supervised`] with the classified
    /// [`crate::FailureKind`], [`BackendError::Quarantined`] for an
    /// executable the supervisor refuses to run, or I/O errors writing the
    /// test-vector file.
    pub fn run_supervised(
        &self,
        steps: u64,
        tests: &TestVectors,
        opts: &RunOptions,
        supervisor: &Supervisor,
    ) -> Result<SupervisedRun, BackendError> {
        self.check_lane_stimulus(tests, opts)?;
        supervisor.run(&self.exe, &self.dir, steps, tests, opts)
    }

    /// Fail fast — before spawning the process — when the stimulus count
    /// does not match the compiled lane width. A lane-N simulator needs
    /// one test-vector set per lane (the primary `tests` plus `N - 1` in
    /// [`RunOptions::lane_tests`]); a scalar simulator must see no
    /// `lane_tests` at all (extra `--tests` arguments would silently
    /// shadow the primary stimulus). Input-less runs (zero-width `tests`,
    /// no `lane_tests`) pass no files and are valid at any lane width.
    fn check_lane_stimulus(
        &self,
        tests: &TestVectors,
        opts: &RunOptions,
    ) -> Result<(), BackendError> {
        let lanes = self.program.lanes.max(1);
        if tests.width() == 0 && opts.lane_tests.is_empty() {
            return Ok(());
        }
        let provided = 1 + opts.lane_tests.len();
        if provided != lanes {
            return Err(BackendError::RunFailed {
                exe: self.exe.clone(),
                detail: format!(
                    "lane-{lanes} simulator needs {lanes} test-vector set(s) \
                     (primary tests + {} in RunOptions::lane_tests), got {provided}",
                    lanes - 1
                ),
            });
        }
        Ok(())
    }

    /// Remove the build directory.
    pub fn clean(&self) {
        crate::compile::clean_build_dir(&self.dir);
    }
}

/// Run any compiled simulator executable speaking the `ACCMOS:` protocol
/// (used for the Rust ablation backend).
///
/// # Errors
///
/// Propagates I/O failures, non-zero exits and protocol errors.
pub fn run_executable(
    exe: &Path,
    work_dir: &Path,
    steps: u64,
    tests: &TestVectors,
    opts: &RunOptions,
) -> Result<SimulationReport, BackendError> {
    invoke_simulator(exe, work_dir, steps, tests, opts)
}

/// Supervised variant of [`run_executable`]: run any `ACCMOS:`-protocol
/// executable under `supervisor`'s [`crate::ExecPolicy`] — hard kill
/// timeout, bounded retries with deterministic backoff, classified
/// failures, and quarantine (used for the Rust ablation backend).
///
/// # Errors
///
/// Returns [`BackendError::Supervised`] with the classified
/// [`crate::FailureKind`], [`BackendError::Quarantined`] for an
/// executable the supervisor refuses to run, or I/O errors writing the
/// test-vector file.
pub fn run_executable_supervised(
    exe: &Path,
    work_dir: &Path,
    steps: u64,
    tests: &TestVectors,
    opts: &RunOptions,
    supervisor: &Supervisor,
) -> Result<SupervisedRun, BackendError> {
    supervisor.run(exe, work_dir, steps, tests, opts)
}

static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Removes the wrapped file on drop (the test-vector file is per-run
/// scratch, even when the run errors out or the process is killed).
pub(crate) struct TempPath(pub(crate) PathBuf);

impl TempPath {
    /// The wrapped path.
    pub(crate) fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A wall-clock budget in whole milliseconds, **rounded up** so a 1.9 ms
/// budget becomes 2 ms (truncation used to shrink every budget by up to
/// 1 ms), with a floor of 1 ms so sub-millisecond budgets stay
/// representable. Shared by the `--budget-ms` argument and the in-process
/// entry call, so both execution modes see the identical budget.
pub(crate) fn budget_ms_value(budget: Duration) -> u64 {
    budget.as_nanos().div_ceil(1_000_000).max(1) as u64
}

/// [`budget_ms_value`] formatted for the `--budget-ms` argument.
fn budget_ms_arg(budget: Duration) -> String {
    budget_ms_value(budget).to_string()
}

/// Write the per-run test-vector file(s) for one invocation: one CSV per
/// lane (the primary `tests`, then [`RunOptions::lane_tests`]), named
/// uniquely per run (PID + sequence + lane ordinal) so concurrent runs of
/// one simulator never race on a shared file. Input-less runs get no
/// files. The returned guards remove the files when dropped.
pub(crate) fn write_test_files(
    work_dir: &Path,
    tests: &TestVectors,
    opts: &RunOptions,
) -> Result<Vec<TempPath>, BackendError> {
    let mut tc_guard = Vec::new();
    if tests.width() > 0 {
        let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
        for (lane, lane_tests) in
            std::iter::once(tests).chain(opts.lane_tests.iter()).enumerate()
        {
            let tc_path = work_dir.join(format!(
                "tests-{}-{}-{}.csv",
                std::process::id(),
                seq,
                lane
            ));
            std::fs::write(&tc_path, lane_tests.to_csv())
                .map_err(|source| BackendError::Io { path: tc_path.clone(), source })?;
            tc_guard.push(TempPath(tc_path));
        }
    }
    Ok(tc_guard)
}

/// Build the simulator command line and write the per-run test-vector
/// file(s) (shared by the plain invocation path and the [`Supervisor`]).
///
/// The test vectors go to files unique to this run (PID + sequence
/// number, plus a lane ordinal for lane-parallel runs), never to a shared
/// `tests.csv`: concurrent runs of the same compiled simulator — exactly
/// what `BatchRunner` does — would otherwise race on the file and read
/// each other's stimulus. A lane-parallel run passes one `--tests` file
/// per lane, in lane order (the primary `tests`, then
/// [`RunOptions::lane_tests`]). The returned guards remove the files when
/// dropped, so every exit path (success, crash, kill) cleans up.
pub(crate) fn prepare_command(
    exe: &Path,
    work_dir: &Path,
    steps: u64,
    tests: &TestVectors,
    opts: &RunOptions,
) -> Result<(Command, Vec<TempPath>), BackendError> {
    let mut cmd = Command::new(exe);
    cmd.arg(steps.to_string());
    let tc_guard = write_test_files(work_dir, tests, opts)?;
    for tc in &tc_guard {
        cmd.arg("--tests").arg(tc.path());
    }
    if opts.stop_on_diagnostic {
        cmd.arg("--stop-on-diag");
    }
    if let Some(budget) = opts.time_budget {
        cmd.arg("--budget-ms").arg(budget_ms_arg(budget));
    }
    Ok((cmd, tc_guard))
}

/// The unsupervised invocation path: build the command line, execute to
/// completion, and parse the `ACCMOS:` protocol. No timeout, no retries —
/// use [`CompiledSimulator::run_supervised`] for untrusted binaries.
fn invoke_simulator(
    exe: &Path,
    work_dir: &Path,
    steps: u64,
    tests: &TestVectors,
    opts: &RunOptions,
) -> Result<SimulationReport, BackendError> {
    let (mut cmd, tc_guard) = prepare_command(exe, work_dir, steps, tests, opts)?;
    let output = cmd
        .output()
        .map_err(|source| BackendError::Io { path: exe.to_path_buf(), source })?;
    drop(tc_guard);
    if !output.status.success() {
        // A signal-terminated process has `code() == None`; report the
        // signal explicitly, and keep the output tails so crash triage
        // does not require a rerun.
        let status = match status_signal(&output.status) {
            Some(signal) => format!("killed by signal {signal}"),
            None => format!("exit code {:?}", output.status.code()),
        };
        return Err(BackendError::RunFailed {
            exe: exe.to_path_buf(),
            detail: format!(
                "{status}; stderr tail: {}; stdout tail: {}",
                tail_str(&output.stderr, 2048),
                tail_str(&output.stdout, 2048)
            ),
        });
    }
    parse_report(&String::from_utf8_lossy(&output.stdout))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_arg_rounds_up_not_down() {
        // 1.9 ms used to truncate to 1 ms — a 47% budget cut.
        assert_eq!(budget_ms_arg(Duration::from_micros(1_900)), "2");
        assert_eq!(budget_ms_arg(Duration::from_micros(1_001)), "2");
        // Exact values stay exact.
        assert_eq!(budget_ms_arg(Duration::from_millis(3)), "3");
        assert_eq!(budget_ms_arg(Duration::from_millis(1)), "1");
        // Sub-millisecond budgets survive via the 1 ms floor.
        assert_eq!(budget_ms_arg(Duration::from_micros(250)), "1");
        assert_eq!(budget_ms_arg(Duration::ZERO), "1");
    }
}
