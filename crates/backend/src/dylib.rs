//! In-process execution of generated simulators compiled as shared
//! objects.
//!
//! `accmos serve` amortizes compilation across thousands of jobs, but a
//! subprocess run still pays `fork`+`exec`, pipe setup, and line-buffered
//! protocol I/O per job. This module loads the simulator built by
//! [`crate::Compiler::compile_shared`] with `dlopen` and calls its
//! `accmos_entry` symbol directly: the `ACCMOS:` records arrive through
//! an emit callback instead of a pipe, and the supervisor's deadline is
//! enforced through the entry point's cooperative cancel flag (checked at
//! block granularity by the generated loop) rather than `SIGKILL`.
//!
//! The trade is isolation: a simulator that crashes in-process takes the
//! host down. Callers therefore route only trusted, deterministic models
//! here (the serve daemon falls back to the subprocess path for `rand:`
//! models and on any load failure) — see `DESIGN.md` §10 for the policy.
//!
//! ## Why every load copies the `.so` first
//!
//! The generated simulator carries mutable process-global state (signal
//! buffers, the one-shot `accmos_entry_used` latch). `dlopen` of one path
//! returns **one shared mapping** per process no matter how many times it
//! is called, so two concurrent loads of the cached artifact would race
//! on the same statics. Copying the artifact to a unique scratch path
//! gives every run its own inode and therefore its own mapping; `dlclose`
//! then unmaps it and the copy is deleted.

#![allow(unsafe_code)]

use crate::error::BackendError;
use crate::protocol::parse_report;
use crate::run::{budget_ms_value, write_test_files, RunOptions, TempPath};
use crate::supervise::FailureKind;
use accmos_ir::{SimulationReport, TestVectors};
use std::ffi::{c_char, c_int, c_void, CStr, CString};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

// `dlopen` and friends live in libc proper on every glibc >= 2.34 and on
// musl; no `-ldl` link directive is needed there.
extern "C" {
    fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dlclose(handle: *mut c_void) -> c_int;
    fn dlerror() -> *mut c_char;
}

const RTLD_NOW: c_int = 2;

/// The generated `accmos_emit_fn` callback type: one `ACCMOS:` record (or
/// record fragment) per call, NUL-terminated.
type EmitFn = unsafe extern "C" fn(ctx: *mut c_void, text: *const c_char);

/// The generated `accmos_entry` symbol. Mirrors the C declaration emitted
/// by `accmos-codegen`'s synthesis pass:
///
/// ```c
/// int accmos_entry(uint64_t total_step, const char *const *tc_path,
///                  int tc_n, int stop_on_diag, uint64_t budget_ms,
///                  const volatile int32_t *cancel,
///                  accmos_emit_fn emit, void *emit_ctx);
/// ```
type EntryFn = unsafe extern "C" fn(
    u64,
    *const *const c_char,
    c_int,
    c_int,
    u64,
    *const i32,
    Option<EmitFn>,
    *mut c_void,
) -> c_int;

/// Entry return codes, fixed by the generated driver.
const ENTRY_OK: c_int = 0;
const ENTRY_BAD_STIMULUS: c_int = 2;
const ENTRY_STALE: c_int = 3;
const ENTRY_CANCELED: c_int = 4;

/// Appends the emitted record bytes to the `Vec<u8>` behind `ctx`. Only
/// ever installed while the owning `Vec` is alive on the calling
/// thread's stack, and the generated code never calls emit after
/// `accmos_entry` returns.
unsafe extern "C" fn capture_emit(ctx: *mut c_void, text: *const c_char) {
    if ctx.is_null() || text.is_null() {
        return;
    }
    let buf = &mut *(ctx as *mut Vec<u8>);
    buf.extend_from_slice(CStr::from_ptr(text).to_bytes());
}

static DYLIB_SEQ: AtomicU64 = AtomicU64::new(0);

/// One completed in-process run.
#[derive(Debug)]
pub struct DylibRun {
    /// The parsed simulation report — same parser, same schema as the
    /// subprocess path.
    pub report: SimulationReport,
    /// Wall-clock time of the entry call (load/unload excluded), the
    /// in-process analogue of the subprocess lifetime.
    pub wall: Duration,
}

/// What one load-and-call lifecycle produced.
enum EntryOutcome {
    /// `dlopen`/`dlsym` failed before the entry ran.
    LoadFailed(String),
    /// The entry ran to completion (any return code) with this capture.
    Finished { rc: c_int, captured: Vec<u8>, wall: Duration },
}

/// One process-wide timer thread that raises cooperative cancel flags at
/// their deadlines. Runs armed entries are registered with; the entry
/// itself executes on the *caller's* thread — spawning a worker thread
/// plus a result channel per run would put a fixed cost back into the
/// dispatch path this engine exists to strip.
struct Watchdog {
    state: Mutex<Vec<(u64, Instant, Arc<AtomicI32>)>>,
    wake: Condvar,
    next_token: AtomicU64,
}

impl Watchdog {
    fn global() -> &'static Watchdog {
        static WATCHDOG: OnceLock<&'static Watchdog> = OnceLock::new();
        WATCHDOG.get_or_init(|| {
            let dog: &'static Watchdog = Box::leak(Box::new(Watchdog {
                state: Mutex::new(Vec::new()),
                wake: Condvar::new(),
                next_token: AtomicU64::new(0),
            }));
            std::thread::Builder::new()
                .name("accmos-dylib-watchdog".into())
                .spawn(move || dog.run())
                .expect("spawn watchdog thread");
            dog
        })
    }

    /// Register `flag` to be raised at `deadline`; returns a token for
    /// [`Watchdog::disarm`].
    fn arm(&self, deadline: Instant, flag: Arc<AtomicI32>) -> u64 {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.state.lock().expect("watchdog lock").push((token, deadline, flag));
        self.wake.notify_one();
        token
    }

    /// Drop a registration (the run finished before its deadline). A
    /// token that already fired is gone; disarming it is a no-op.
    fn disarm(&self, token: u64) {
        self.state.lock().expect("watchdog lock").retain(|(t, _, _)| *t != token);
    }

    fn run(&self) {
        let mut entries = self.state.lock().expect("watchdog lock");
        loop {
            let now = Instant::now();
            entries.retain(|(_, deadline, flag)| {
                if *deadline <= now {
                    flag.store(1, Ordering::SeqCst);
                    false
                } else {
                    true
                }
            });
            let next = entries.iter().map(|(_, deadline, _)| *deadline).min();
            entries = match next {
                Some(deadline) => {
                    let sleep = deadline.saturating_duration_since(now);
                    self.wake.wait_timeout(entries, sleep).expect("watchdog lock").0
                }
                None => self.wake.wait(entries).expect("watchdog lock"),
            };
        }
    }
}

/// Runs a simulator `.so` (from [`crate::Compiler::compile_shared`])
/// in-process via its `accmos_entry` symbol.
///
/// Each [`DylibRunner::run`] call is fully independent: the cached
/// artifact is copied to a scratch path, loaded, invoked once, unloaded,
/// and the copy removed. The supervisor's kill deadline maps to the
/// cooperative cancel flag; a run that stops on it reports
/// [`FailureKind::Timeout`] through [`BackendError::Supervised`], exactly
/// like a killed subprocess. Any failure to *load* — as opposed to run —
/// surfaces as [`BackendError::RunFailed`], the caller's signal to fall
/// back to the subprocess path.
#[derive(Debug, Clone)]
pub struct DylibRunner {
    so: PathBuf,
    work_dir: PathBuf,
}

impl DylibRunner {
    /// A runner for `so`, staging scratch copies and test-vector files in
    /// `work_dir`.
    pub fn new(so: impl Into<PathBuf>, work_dir: impl Into<PathBuf>) -> DylibRunner {
        DylibRunner { so: so.into(), work_dir: work_dir.into() }
    }

    /// A runner for a compiled dylib artifact, staging in its build dir.
    pub fn for_dylib(dylib: &crate::CompiledDylib) -> DylibRunner {
        DylibRunner::new(dylib.so(), dylib.dir())
    }

    /// The shared object this runner loads.
    pub fn so(&self) -> &Path {
        &self.so
    }

    /// Run the simulator in-process for `steps` steps against `tests`,
    /// with `deadline` mapped onto the cooperative cancel flag.
    ///
    /// # Errors
    ///
    /// - [`BackendError::Supervised`] with [`FailureKind::Timeout`] when
    ///   the deadline fired and the simulator honored the cancel flag;
    /// - [`BackendError::Protocol`] when the entry succeeded but its
    ///   emitted records did not parse;
    /// - [`BackendError::RunFailed`] for every load-side failure (missing
    ///   file, `dlopen`/`dlsym` error, stale one-shot entry, stimulus
    ///   mismatch, in-process panic) — the caller should fall back to the
    ///   subprocess engine on this variant;
    /// - [`BackendError::Io`] when the test-vector file cannot be
    ///   written.
    pub fn run(
        &self,
        steps: u64,
        tests: &TestVectors,
        opts: &RunOptions,
        deadline: Option<Duration>,
    ) -> Result<DylibRun, BackendError> {
        // Unique scratch copy: see the module docs for why this is
        // mandatory, not an optimization.
        let seq = DYLIB_SEQ.fetch_add(1, Ordering::Relaxed);
        let scratch = self
            .work_dir
            .join(format!("sim-dy-{}-{seq}.so", std::process::id()));
        std::fs::copy(&self.so, &scratch)
            .map_err(|source| BackendError::Io { path: self.so.clone(), source })?;
        let scratch = TempPath(scratch);

        let tc_guard = write_test_files(&self.work_dir, tests, opts)?;
        let tc_paths: Vec<CString> = tc_guard
            .iter()
            .map(|t| CString::new(t.path().to_string_lossy().into_owned()))
            .collect::<Result<_, _>>()
            .map_err(|_| BackendError::RunFailed {
                exe: self.so.clone(),
                detail: "test-vector path contains a NUL byte".into(),
            })?;
        let budget_ms = opts.time_budget.map(budget_ms_value).unwrap_or(0);
        let stop_on_diag = c_int::from(opts.stop_on_diagnostic);

        // The entry runs on this thread; a deadline arms the shared
        // watchdog, which raises the cooperative flag at its due time —
        // the generated loop checks it at block granularity, so return
        // after the deadline is bounded by one block of work.
        let cancel = Arc::new(AtomicI32::new(0));
        let token = deadline
            .map(|limit| Watchdog::global().arm(Instant::now() + limit, Arc::clone(&cancel)));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            load_and_run(scratch.path(), steps, &tc_paths, stop_on_diag, budget_ms, &cancel)
        }));
        if let Some(token) = token {
            Watchdog::global().disarm(token);
        }
        drop(tc_guard);
        drop(scratch);

        let Ok(outcome) = outcome else {
            // Poisoned simulator state is possible after a panic — treat
            // it like a crash and let the caller fall back to a
            // subprocess.
            return Err(BackendError::RunFailed {
                exe: self.so.clone(),
                detail: "in-process simulator run panicked".into(),
            });
        };

        match outcome {
            EntryOutcome::LoadFailed(detail) => Err(BackendError::RunFailed {
                exe: self.so.clone(),
                detail,
            }),
            EntryOutcome::Finished { rc: ENTRY_OK, captured, wall } => {
                let report = parse_report(&String::from_utf8_lossy(&captured))?;
                Ok(DylibRun { report, wall })
            }
            EntryOutcome::Finished { rc: ENTRY_CANCELED, .. } => {
                let t = deadline.unwrap_or_default();
                Err(BackendError::Supervised {
                    exe: self.so.clone(),
                    kind: FailureKind::Timeout,
                    attempts: 1,
                    detail: format!(
                        "in-process run canceled after exceeding the {t:?} deadline \
                         (cooperative cancel honored)"
                    ),
                })
            }
            EntryOutcome::Finished { rc, captured, .. } => {
                let why = match rc {
                    ENTRY_BAD_STIMULUS => "stimulus count does not match the lane width",
                    ENTRY_STALE => "accmos_entry is one-shot per load and was reused",
                    _ => "unknown entry failure",
                };
                Err(BackendError::RunFailed {
                    exe: self.so.clone(),
                    detail: format!(
                        "accmos_entry returned {rc} ({why}); capture tail: {}",
                        crate::supervise::tail_str(&captured, 512)
                    ),
                })
            }
        }
    }
}

/// The whole dlopen → dlsym → call → dlclose lifecycle, confined to one
/// function frame so raw handles never escape it.
fn load_and_run(
    so: &Path,
    steps: u64,
    tc_paths: &[CString],
    stop_on_diag: c_int,
    budget_ms: u64,
    cancel: &AtomicI32,
) -> EntryOutcome {
    let Ok(c_path) = CString::new(so.to_string_lossy().into_owned()) else {
        return EntryOutcome::LoadFailed("shared object path contains a NUL byte".into());
    };
    // SAFETY: `c_path` is a valid NUL-terminated string; RTLD_NOW resolves
    // every symbol up front so no lazy-binding fault can fire mid-run.
    let handle = unsafe { dlopen(c_path.as_ptr(), RTLD_NOW) };
    if handle.is_null() {
        return EntryOutcome::LoadFailed(format!("dlopen failed: {}", last_dl_error()));
    }
    // Unmap on every exit path below.
    struct CloseGuard(*mut c_void);
    impl Drop for CloseGuard {
        fn drop(&mut self) {
            // SAFETY: the handle came from a successful dlopen and is
            // closed exactly once.
            unsafe { dlclose(self.0) };
        }
    }
    let _guard = CloseGuard(handle);

    let symbol = CString::new("accmos_entry").expect("static symbol name");
    // SAFETY: valid handle, valid symbol name.
    let entry = unsafe { dlsym(handle, symbol.as_ptr()) };
    if entry.is_null() {
        return EntryOutcome::LoadFailed(format!(
            "dlsym(accmos_entry) failed: {} (artifact predates the dylib ABI?)",
            last_dl_error()
        ));
    }
    // SAFETY: the symbol was emitted by our own codegen with exactly the
    // EntryFn signature; transmuting a non-null dlsym result to it is the
    // canonical dlopen idiom.
    let entry: EntryFn = unsafe { std::mem::transmute::<*mut c_void, EntryFn>(entry) };

    let mut captured: Vec<u8> = Vec::with_capacity(4096);
    let argv: Vec<*const c_char> = tc_paths.iter().map(|p| p.as_ptr()).collect();
    let start = Instant::now();
    // SAFETY: `argv` outlives the call and holds `tc_n` valid pointers;
    // `captured` outlives the call and is only touched through the emit
    // callback on this thread; the cancel pointer stays valid because the
    // caller holds the other Arc reference until after join.
    let rc = unsafe {
        entry(
            steps,
            if argv.is_empty() { std::ptr::null() } else { argv.as_ptr() },
            argv.len() as c_int,
            stop_on_diag,
            budget_ms,
            cancel.as_ptr(),
            Some(capture_emit),
            (&mut captured) as *mut Vec<u8> as *mut c_void,
        )
    };
    let wall = start.elapsed();
    EntryOutcome::Finished { rc, captured, wall }
}

/// The pending `dlerror()` message, or a placeholder when libc reports
/// none.
fn last_dl_error() -> String {
    // SAFETY: dlerror returns NULL or a pointer to a NUL-terminated
    // string valid until the next dl* call on this thread.
    let msg = unsafe { dlerror() };
    if msg.is_null() {
        "unknown dlopen error".into()
    } else {
        // SAFETY: non-null dlerror result is a valid C string.
        unsafe { CStr::from_ptr(msg) }.to_string_lossy().into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlopen_of_a_missing_file_is_a_load_failure_not_a_panic() {
        let dir = std::env::temp_dir();
        let runner = DylibRunner::new(dir.join("no-such-sim.so"), &dir);
        let err = runner
            .run(8, &TestVectors::default(), &RunOptions::default(), None)
            .unwrap_err();
        match err {
            BackendError::Io { .. } | BackendError::RunFailed { .. } => {}
            other => panic!("expected a fallback-signaling error, got {other:?}"),
        }
    }

    #[test]
    fn dlopen_of_a_non_elf_file_reports_dlerror_detail() {
        let dir = std::env::temp_dir();
        let so = dir.join(format!("accmos-not-an-so-{}.so", std::process::id()));
        std::fs::write(&so, b"definitely not ELF").unwrap();
        let runner = DylibRunner::new(&so, &dir);
        let err = runner
            .run(8, &TestVectors::default(), &RunOptions::default(), None)
            .unwrap_err();
        let BackendError::RunFailed { detail, .. } = err else {
            panic!("expected RunFailed, got {err:?}");
        };
        assert!(detail.contains("dlopen failed"), "detail: {detail}");
        let _ = std::fs::remove_file(&so);
    }
}
