//! Supervisor behavior against misbehaving executables.
//!
//! These tests use tiny shell scripts as stand-ins for generated
//! simulators — each script misbehaves in exactly one way (hang, crash,
//! garbled protocol, non-zero exit, fail-once-then-succeed) so every
//! [`FailureKind`] classification is exercised in isolation. The richer
//! end-to-end scenario (a mixed batch through the `faultsim` binary) lives
//! in the workspace-level `chaos` test.

#![cfg(unix)]

use accmos_backend::{BackendError, ExecPolicy, FailureKind, RunOptions, Supervisor};
use accmos_ir::TestVectors;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A scratch directory holding one executable script; removed on drop.
struct Scripted {
    dir: PathBuf,
    exe: PathBuf,
}

impl Scripted {
    fn new(tag: &str, body: &str) -> Scripted {
        use std::os::unix::fs::PermissionsExt;
        let dir = std::env::temp_dir().join(format!(
            "accmos-supervise-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let exe = dir.join(format!("sim-{tag}"));
        std::fs::write(&exe, format!("#!/bin/sh\n{body}\n")).unwrap();
        std::fs::set_permissions(&exe, std::fs::Permissions::from_mode(0o755)).unwrap();
        Scripted { dir, exe }
    }
}

impl Drop for Scripted {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A policy fast enough for CI: 200 ms kill deadline, millisecond backoff.
fn fast_policy() -> ExecPolicy {
    ExecPolicy::default()
        .with_kill_timeout(Duration::from_millis(200))
        .with_retries(2)
        .with_backoff(Duration::from_millis(2))
}

const OK_PROTOCOL: &str = "\
echo 'ACCMOS:MODEL fake'
echo 'ACCMOS:STEPS 5'
echo 'ACCMOS:TIME_NS 1000'
echo 'ACCMOS:DIGEST 00000000deadbeef'
echo 'ACCMOS:END'";

fn run(sup: &Supervisor, s: &Scripted) -> Result<accmos_backend::SupervisedRun, BackendError> {
    sup.run(&s.exe, &s.dir, 5, &TestVectors::new(), &RunOptions::default())
}

fn kind_of(err: &BackendError) -> FailureKind {
    err.failure_kind().unwrap_or_else(|| panic!("expected Supervised error, got {err}"))
}

#[test]
fn healthy_script_passes_through() {
    let s = Scripted::new("ok", OK_PROTOCOL);
    let sup = Supervisor::new(fast_policy());
    let out = run(&sup, &s).expect("healthy run succeeds");
    assert_eq!(out.retries, 0);
    assert_eq!(out.report.steps, 5);
    assert_eq!(out.report.output_digest, 0xdead_beef);
}

#[test]
fn hang_is_killed_and_classified_timeout() {
    let s = Scripted::new("hang", "echo 'ACCMOS:MODEL fake'\nsleep 30");
    let sup = Supervisor::new(fast_policy());
    let start = Instant::now();
    let err = run(&sup, &s).unwrap_err();
    let elapsed = start.elapsed();
    assert_eq!(kind_of(&err), FailureKind::Timeout);
    assert!(
        elapsed < Duration::from_secs(5),
        "hard kill must fire near the 200 ms deadline, took {elapsed:?}"
    );
    // Timeouts are not retried: the budget is already spent.
    let BackendError::Supervised { attempts, .. } = err else { unreachable!() };
    assert_eq!(attempts, 1);
}

#[test]
fn near_instant_child_still_reports_peak_rss() {
    // Regression: peak RSS was sampled from /proc only on poll
    // iterations, so a child exiting before the first sample reported
    // peak_rss = 0. The reap itself now carries the kernel's ru_maxrss.
    let s = Scripted::new("instant", OK_PROTOCOL);
    let sup = Supervisor::new(fast_policy());
    let out = run(&sup, &s).expect("healthy run succeeds");
    assert!(
        out.peak_rss_kb > 0,
        "a real process always has a non-zero high-water RSS at reap"
    );
}

#[test]
fn kill_fires_at_the_deadline_not_a_poll_period_late() {
    // Regression: the poll backoff caps at 10 ms and the sleep was not
    // clamped to the remaining deadline, so --exec-timeout could
    // overshoot by up to one poll period. `exec` keeps the script's
    // stdout in the hung process itself, so the kill closes the pipe
    // immediately and the elapsed time is deadline + kill + epsilon.
    let s = Scripted::new("deadline", "exec sleep 30");
    let sup = Supervisor::new(fast_policy().with_retries(0));
    let start = Instant::now();
    let err = run(&sup, &s).unwrap_err();
    let elapsed = start.elapsed();
    assert_eq!(kind_of(&err), FailureKind::Timeout);
    assert!(elapsed >= Duration::from_millis(200), "killed before the deadline");
    assert!(
        elapsed < Duration::from_millis(330),
        "200 ms deadline overshot: killed after {elapsed:?}"
    );
}

#[test]
fn timeout_detail_keeps_partial_output_from_a_stalled_reader() {
    // A killed child whose orphaned grandchild holds stdout open: the
    // reader is abandoned after the timeout grace, but the bytes that
    // arrived in time must still reach the failure detail (they used to
    // be discarded wholesale), and the orphan's late flush must not.
    let s = Scripted::new(
        "hangflush",
        "printf 'ACCMOS:MODEL fake\\nACCMOS:TIME_'\n\
         ( sleep 2; printf '9\\nACCMOS:END\\n' ) &\n\
         sleep 30",
    );
    let sup = Supervisor::new(fast_policy().with_retries(0));
    let err = run(&sup, &s).unwrap_err();
    assert_eq!(kind_of(&err), FailureKind::Timeout);
    let BackendError::Supervised { attempts, detail, .. } = &err else { unreachable!() };
    assert_eq!(*attempts, 1);
    assert!(
        detail.contains("ACCMOS:TIME_"),
        "partial stdout must survive reader abandonment: {detail}"
    );
    assert!(
        !detail.contains("ACCMOS:END"),
        "late flush from the orphan leaked into the classification: {detail}"
    );
}

#[test]
fn signal_death_is_classified_crashed_and_quarantined() {
    let s = Scripted::new("segv", "kill -SEGV $$");
    let sup = Supervisor::new(fast_policy().with_quarantine_after(3));
    let err = run(&sup, &s).unwrap_err();
    // 3 attempts (1 + 2 retries), each crashing on SIGSEGV (11).
    assert_eq!(kind_of(&err), FailureKind::Crashed { signal: 11 });
    let BackendError::Supervised { attempts, .. } = &err else { unreachable!() };
    assert_eq!(*attempts, 3, "crashes are retried up to the budget");
    assert_eq!(sup.crash_count(&s.exe), 3);
    assert!(sup.is_quarantined(&s.exe), "3 crashes reach quarantine_after=3");
    // The supervisor refuses further runs of a quarantined executable.
    let err = run(&sup, &s).unwrap_err();
    assert!(
        matches!(err, BackendError::Quarantined { crashes: 3, .. }),
        "expected Quarantined, got {err}"
    );
}

#[test]
fn nonzero_exit_is_retried_with_exit_code_and_stderr() {
    let s = Scripted::new("exit3", "echo 'boom: stack smashed' >&2\nexit 3");
    let sup = Supervisor::new(fast_policy());
    let err = run(&sup, &s).unwrap_err();
    assert_eq!(kind_of(&err), FailureKind::NonZeroExit { code: 3 });
    let BackendError::Supervised { attempts, detail, .. } = &err else { unreachable!() };
    assert_eq!(*attempts, 3, "non-zero exits retry up to the budget");
    assert!(detail.contains("boom: stack smashed"), "stderr tail kept: {detail}");
    assert!(!sup.is_quarantined(&s.exe), "non-zero exits do not quarantine");
}

#[test]
fn garbled_protocol_is_not_retried() {
    let s = Scripted::new("garbled", "echo 'ACCMOS:BOGUS 1 2 3'\necho 'ACCMOS:END'");
    let sup = Supervisor::new(fast_policy());
    let err = run(&sup, &s).unwrap_err();
    assert_eq!(kind_of(&err), FailureKind::ProtocolCorrupt);
    let BackendError::Supervised { attempts, .. } = err else { unreachable!() };
    assert_eq!(attempts, 1, "protocol corruption is deterministic, no retry");
}

#[test]
fn truncated_stream_is_protocol_corrupt_with_record_count() {
    let s = Scripted::new(
        "truncated",
        "echo 'ACCMOS:MODEL fake'\necho 'ACCMOS:STEPS 5'\nprintf 'ACCMOS:DIG'",
    );
    let sup = Supervisor::new(fast_policy());
    let err = run(&sup, &s).unwrap_err();
    assert_eq!(kind_of(&err), FailureKind::ProtocolCorrupt);
    assert!(
        err.to_string().contains("truncated after 2"),
        "truncation detail surfaces through supervision: {err}"
    );
}

#[test]
fn fail_once_then_succeed_costs_one_retry() {
    let s = Scripted::new(
        "flaky",
        &format!(
            "STATE=\"$(dirname \"$0\")/flaky.state\"\n\
             if [ ! -f \"$STATE\" ]; then touch \"$STATE\"; exit 3; fi\n{OK_PROTOCOL}"
        ),
    );
    let sup = Supervisor::new(fast_policy());
    let out = run(&sup, &s).expect("second attempt succeeds");
    assert_eq!(out.retries, 1, "exactly one retry consumed");
    assert_eq!(out.report.output_digest, 0xdead_beef);
}

#[test]
fn missing_executable_is_transient_io() {
    let dir = std::env::temp_dir().join(format!("accmos-supervise-{}-gone", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sup = Supervisor::new(fast_policy().with_retries(1));
    let err = sup
        .run(&dir.join("no-such-sim"), &dir, 5, &TestVectors::new(), &RunOptions::default())
        .unwrap_err();
    assert_eq!(kind_of(&err), FailureKind::TransientIo);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scratch_test_vector_files_are_cleaned_up_even_on_kill() {
    use accmos_ir::{DataType, Scalar};
    let s = Scripted::new("hang-tests", "sleep 30");
    let sup = Supervisor::new(fast_policy().with_retries(0));
    let mut tests = TestVectors::new();
    tests.push_column("In", DataType::I32, vec![Scalar::I32(1)]);
    let err = sup.run(&s.exe, &s.dir, 5, &tests, &RunOptions::default()).unwrap_err();
    assert_eq!(kind_of(&err), FailureKind::Timeout);
    let leftovers = leftover_csvs(&s.dir);
    assert!(leftovers.is_empty(), "tests-*.csv left behind: {leftovers:?}");
}

fn leftover_csvs(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("tests-") && n.ends_with(".csv"))
                })
                .collect()
        })
        .unwrap_or_default()
}
