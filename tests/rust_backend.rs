//! Three-way differential test: the interpreter, the generated C simulator
//! and the generated **Rust** simulator (the ablation backend of the
//! paper's §5 extensibility discussion) must agree bit-for-bit.

use accmos::{AccMoS, Engine as _, NormalEngine, RunOptions, SimOptions};
use accmos_backend::{compile_rust, compile_rust_cached, run_executable, BuildCache};
use accmos_codegen::{generate_rust, CodegenOptions};
use accmos_ir::CoverageKind;
use accmos_testgen::{random_tests, ModelGenConfig, RandomModelGen};

fn three_way(cfg: ModelGenConfig, steps: u64) {
    let seed = cfg.seed;
    let model = RandomModelGen::new(cfg).generate();
    let pre = accmos::preprocess(&model).unwrap();
    let tests = random_tests(&pre, 16, seed.wrapping_mul(17));

    let interp = NormalEngine::new().run(&pre, &tests, &SimOptions::steps(steps));

    let c_sim = AccMoS::new().prepare(&model).unwrap();
    let c_report = c_sim.run(steps, &tests, &RunOptions::default()).unwrap();
    c_sim.clean();

    let rust_program = generate_rust(&pre, &CodegenOptions::accmos());
    let (exe, dir, _) = compile_rust(&rust_program).unwrap_or_else(|e| {
        panic!("seed {seed}: rustc failed: {e}\n{}", rust_program.main_rs)
    });
    let rust_report =
        run_executable(&exe, &dir, steps, &tests, &RunOptions::default()).unwrap();
    accmos_backend::clean_build_dir(&dir);

    assert_eq!(
        interp.output_digest, rust_report.output_digest,
        "seed {seed}: rust backend digest\n--- generated Rust ---\n{}",
        rust_program.main_rs
    );
    assert_eq!(c_report.output_digest, rust_report.output_digest, "seed {seed}: C vs Rust");
    assert_eq!(interp.final_outputs, rust_report.final_outputs, "seed {seed}: outputs");
    let (icov, rcov) = (interp.coverage.unwrap(), rust_report.coverage.unwrap());
    for kind in CoverageKind::ALL {
        assert_eq!(icov.counts(kind), rcov.counts(kind), "seed {seed}: {kind}");
    }
    assert_eq!(interp.diagnostics, rust_report.diagnostics, "seed {seed}: diagnostics");
}

#[test]
fn rust_backend_matches_integer_models() {
    for seed in 700..704 {
        three_way(ModelGenConfig { seed, actors: 26, ..ModelGenConfig::default() }, 64);
    }
}

#[test]
fn rust_backend_matches_float_and_vector_models() {
    for seed in 800..803 {
        three_way(
            ModelGenConfig {
                seed,
                actors: 36,
                float_math: true,
                vectors: true,
                ..ModelGenConfig::default()
            },
            64,
        );
    }
}

/// Mirror of the C backend's cache test: the second rustc build of a
/// byte-identical program must be served from the [`BuildCache`] without
/// invoking rustc, and the cached executable must behave identically.
#[test]
fn rust_backend_second_build_hits_the_cache() {
    let cache_root = std::env::temp_dir()
        .join(format!("accmos-rustcache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_root);
    let cache = BuildCache::at(&cache_root);

    let model = accmos_models::by_name("CSEV");
    let pre = accmos::preprocess(&model).unwrap();
    let tests = random_tests(&pre, 16, 11);
    let program = generate_rust(&pre, &CodegenOptions::accmos());

    let (exe, dir, _, hit) = compile_rust_cached(&program, Some(&cache)).unwrap();
    assert!(!hit, "first build must be a cold rustc compile");
    let cold = run_executable(&exe, &dir, 50, &tests, &RunOptions::default()).unwrap();
    accmos_backend::clean_build_dir(&dir);

    let (exe, dir, _, hit) = compile_rust_cached(&program, Some(&cache)).unwrap();
    assert!(hit, "second build of identical source must hit the cache");
    let cached = run_executable(&exe, &dir, 50, &tests, &RunOptions::default()).unwrap();
    accmos_backend::clean_build_dir(&dir);

    assert_eq!(cold.output_digest, cached.output_digest);
    assert_eq!(cold.diagnostics, cached.diagnostics);
    assert!(cache.stats().hits >= 1);
    cache.clear().unwrap();
}

#[test]
fn rust_backend_runs_a_benchmark_model() {
    let model = accmos_models::by_name("CSEV");
    let pre = accmos::preprocess(&model).unwrap();
    let tests = random_tests(&pre, 32, 5);
    let interp = NormalEngine::new().run(&pre, &tests, &SimOptions::steps(100));

    let rust_program = generate_rust(&pre, &CodegenOptions::accmos());
    let (exe, dir, _) = compile_rust(&rust_program).unwrap();
    let rust_report =
        run_executable(&exe, &dir, 100, &tests, &RunOptions::default()).unwrap();
    accmos_backend::clean_build_dir(&dir);

    assert_eq!(interp.output_digest, rust_report.output_digest);
    assert_eq!(interp.diagnostics, rust_report.diagnostics);
}
