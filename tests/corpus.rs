//! Corpus replay: every checked-in entry under `tests/corpus/` is a
//! model + pinned-digest pair — either a regression anchor pinned with
//! `accmos fuzz --pin`, or a divergence repro minimized by a fuzz
//! campaign. Each is replayed exactly: the pinned stimulus is
//! regenerated from its seed, the interpreter and the compiled simulator
//! both run it, and both digests must match the pinned one (and each
//! other, field by field).
//!
//! An interpreter mismatch means the *reference semantics* drifted; a
//! compiled mismatch means the codegen bug the entry was minimized from
//! is back (or was never fixed). Either way the entry names the exact
//! model and stimulus to debug. See the README's corpus-triage workflow
//! for what to do when an intentional semantic change re-fires these.

use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_checked_in_corpus_entry_replays_clean() {
    let entries = accmos::fuzz::corpus_entries(&corpus_dir());
    assert!(
        !entries.is_empty(),
        "tests/corpus/ must hold at least the pinned regression anchors"
    );
    let mut failures = Vec::new();
    for path in &entries {
        if let Err(e) = accmos::fuzz::replay_corpus_entry(path) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus entr(ies) failed replay:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn corpus_entries_cover_conditional_and_lane_parallel_models() {
    // The anchors are chosen to keep the two trickiest codegen features
    // pinned forever: conditional-group gating and lane-4 execution.
    let entries = accmos::fuzz::corpus_entries(&corpus_dir());
    let mut saw_lanes4 = false;
    let mut saw_groups = false;
    for path in &entries {
        let text = std::fs::read_to_string(path).unwrap();
        let model = accmos::parse_mdlx(&text).unwrap();
        let pre = accmos::preprocess(&model).unwrap();
        if !pre.flat.groups.is_empty() {
            saw_groups = true;
        }
        let expected = std::fs::read_to_string(path.with_extension("expected")).unwrap();
        let fields = accmos::telemetry::parse_flat_object(expected.trim()).unwrap();
        if fields.num("lanes") == Some(4) {
            saw_lanes4 = true;
        }
    }
    assert!(saw_groups, "no corpus entry with conditional groups");
    assert!(saw_lanes4, "no lane-4 corpus entry");
}
