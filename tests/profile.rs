//! Profiling neutrality: a simulator built with `--profile` must produce
//! bit-identical results to the unprofiled build — same output digest
//! (per lane and aggregate), same diagnostics, same coverage counts. The
//! instrumentation only reads the monotonic clock and bumps counters; it
//! never touches model state, so any divergence here means a profiling
//! site leaked into the semantics (e.g. a site placed inside a fused
//! lane loop perturbing auto-vectorized evaluation order).
//!
//! The sweep covers the full Table 1 suite at lane widths 1 and 4, plus
//! a synthetic straight-line chain that forces the segmented execution
//! shape so the shared `fused:` segment sites get exercised (the real
//! benchmarks are branchy enough that they all pick the lane-blocked
//! shape with per-actor sites).

use accmos::{AccMoS, RunOptions};
use accmos_ir::{ActorKind, BitOp, CoverageKind, DataType, Model, ModelBuilder, TestVectors};
use accmos_testgen::random_tests;

/// Run the model twice — plain and profiled — and assert the reports are
/// observationally identical apart from the profile itself.
fn assert_profile_neutral(model: &Model, lanes: usize, steps: u64, seed: u64) {
    let pre = accmos::preprocess(model).unwrap();
    let tests = random_tests(&pre, 8, seed);
    let lane_tests: Vec<TestVectors> = (1..lanes as u64)
        .map(|lane| random_tests(&pre, 8, seed.wrapping_add(lane)))
        .collect();
    let opts = RunOptions { lane_tests, ..RunOptions::default() };

    let plain_sim = AccMoS::new().with_lanes(lanes).prepare(model).unwrap();
    let plain = plain_sim.run(steps, &tests, &opts).unwrap();
    plain_sim.clean();

    let base = AccMoS::new().with_lanes(lanes);
    let copts = base.codegen_options().clone().with_profile();
    let prof_sim = base.with_codegen(copts).prepare(model).unwrap();
    let prof = prof_sim.run(steps, &tests, &opts).unwrap();
    prof_sim.clean();

    let ctx = format!("{} lanes {lanes}", model.name);
    assert_eq!(plain.output_digest, prof.output_digest, "{ctx}: aggregate digest");
    assert_eq!(plain.diagnostics, prof.diagnostics, "{ctx}: diagnostics");
    assert_eq!(plain.final_outputs, prof.final_outputs, "{ctx}: outputs");
    assert_eq!(
        plain.lane_reports.len(),
        prof.lane_reports.len(),
        "{ctx}: lane report count"
    );
    for (lane, (p, f)) in plain.lane_reports.iter().zip(&prof.lane_reports).enumerate() {
        assert_eq!(p.output_digest, f.output_digest, "{ctx}: lane {lane} digest");
        assert_eq!(p.diagnostics, f.diagnostics, "{ctx}: lane {lane} diagnostics");
    }
    let (pc, fc) = (plain.coverage.unwrap(), prof.coverage.unwrap());
    for kind in CoverageKind::ALL {
        assert_eq!(pc.counts(kind), fc.counts(kind), "{ctx}: {kind} coverage");
    }

    // Only the profiled build reports sites, and the run actually hit
    // some of them. (Individual sites may legitimately stay at zero
    // calls: a group-conditional actor whose guard never fired.)
    assert!(plain.profile.is_empty(), "{ctx}: unprofiled build emitted PROF records");
    assert!(!prof.profile.is_empty(), "{ctx}: profiled build emitted no PROF records");
    let calls: u64 = prof.profile.iter().map(|s| s.calls).sum();
    assert!(calls > 0, "{ctx}: no profiling site was ever invoked");
}

#[test]
fn profiling_is_neutral_for_reference_models() {
    for name in ["CSEV", "SPV", "TWC", "LEDLC"] {
        for lanes in [1, 4] {
            assert_profile_neutral(&accmos_models::by_name(name), lanes, 64, 0xACC);
        }
    }
}

#[test]
fn profiling_is_neutral_for_mid_models() {
    for name in ["CPUT", "FMTM", "TCP", "UTPC"] {
        for lanes in [1, 4] {
            assert_profile_neutral(&accmos_models::by_name(name), lanes, 64, 0xACC);
        }
    }
}

#[test]
fn profiling_is_neutral_for_large_models() {
    for name in ["LANS", "RAC"] {
        for lanes in [1, 4] {
            assert_profile_neutral(&accmos_models::by_name(name), lanes, 48, 7);
        }
    }
}

/// A straight-line bitwise chain: every actor is branch-free *and*
/// diagnosis-free (bit operations cannot overflow, unlike Gain/Sum whose
/// wrap checks keep them out of fused segments on full-range inputs), so
/// the lane shape heuristic (fused share >= 75%) picks the per-step
/// segmented form and the whole schedule lands in one fused lane loop.
fn chain_model(n: usize) -> Model {
    let mut b = ModelBuilder::new("Chain");
    b.inport("In", DataType::U32);
    let mut prev = "In".to_string();
    for i in 0..n {
        let name = format!("A{i}");
        b.actor(&name, ActorKind::Bitwise { op: BitOp::Not });
        b.connect((prev.as_str(), 0), (name.as_str(), 0));
        prev = name;
    }
    b.outport("Out", DataType::U32);
    b.connect((prev.as_str(), 0), ("Out", 0));
    b.build().expect("chain model")
}

/// The segmented lane shape times whole fused segments (one shared site
/// outside the lane loop) instead of individual actors — and stays
/// digest-neutral doing it.
#[test]
fn fused_segments_get_shared_profile_sites() {
    let model = chain_model(30);
    assert_profile_neutral(&model, 4, 256, 11);

    let base = AccMoS::new().with_lanes(4);
    let copts = base.codegen_options().clone().with_profile();
    let pipeline = base.with_codegen(copts);
    let program = pipeline.generate(&model).unwrap();
    assert!(
        program.fused_actors * 4 >= program.total_actors * 3,
        "chain model no longer selects the segmented shape ({}/{} fused)",
        program.fused_actors,
        program.total_actors
    );

    let pre = accmos::preprocess(&model).unwrap();
    let tests = random_tests(&pre, 8, 11);
    let lane_tests: Vec<TestVectors> =
        (1..4u64).map(|lane| random_tests(&pre, 8, 11 + lane)).collect();
    let sim = pipeline.prepare(&model).unwrap();
    let report = sim
        .run(256, &tests, &RunOptions { lane_tests, ..RunOptions::default() })
        .unwrap();
    sim.clean();

    let fused: Vec<_> =
        report.profile.iter().filter(|s| s.actor.starts_with("fused:")).collect();
    assert!(
        !fused.is_empty(),
        "segmented shape produced no fused: sites; got {:?}",
        report.profile.iter().map(|s| &s.actor).collect::<Vec<_>>()
    );
    for site in &fused {
        // One call per step — the segment is timed outside the lane loop.
        assert_eq!(site.calls, 256, "fused site {} call count", site.actor);
        // `fused:<first-actor>+<n>` names the segment it covers.
        let (_, count) = site.actor.rsplit_once('+').expect("segment name arity");
        assert!(count.parse::<usize>().unwrap() >= 4, "segment below minimum run");
    }
}

/// The Rust ablation backend honors the same profiling contract: PROF
/// records out, digests untouched.
#[test]
fn rust_backend_profiling_is_neutral() {
    use accmos_backend::{compile_rust, run_executable};
    use accmos_codegen::{generate_rust, CodegenOptions};

    let model = chain_model(12);
    let pre = accmos::preprocess(&model).unwrap();
    let tests = random_tests(&pre, 8, 5);
    let opts = RunOptions::default();

    let mut reports = Vec::new();
    for profiled in [false, true] {
        let mut copts = CodegenOptions::accmos();
        if profiled {
            copts = copts.with_profile();
        }
        let program = generate_rust(&pre, &copts);
        let (exe, dir, _) = compile_rust(&program)
            .unwrap_or_else(|e| panic!("rustc failed: {e}\n{}", program.main_rs));
        let report = run_executable(&exe, &dir, 64, &tests, &opts).unwrap();
        accmos_backend::clean_build_dir(&dir);
        reports.push(report);
    }
    let (plain, prof) = (&reports[0], &reports[1]);
    assert_eq!(plain.output_digest, prof.output_digest, "rust digest");
    assert_eq!(plain.diagnostics, prof.diagnostics, "rust diagnostics");
    assert!(plain.profile.is_empty(), "unprofiled rust build emitted PROF");
    assert!(!prof.profile.is_empty(), "profiled rust build emitted no PROF");
    assert!(prof.profile.iter().all(|s| s.calls == 64), "rust per-step call counts");
}
