//! In-process (dylib) execution equivalence: the `accmos serve` fast
//! path must be observationally identical to the subprocess engine.
//!
//! Every Table 1 benchmark is compiled twice from the same generated
//! program — once as the supervised executable, once as the shared
//! object the daemon loads — and run over identical stimulus at lane
//! widths 1 and 4. Digest, final outputs, step count, diagnostics,
//! coverage and the per-lane sub-reports must all match exactly: the
//! dispatch mechanism is allowed to change, the simulation is not.

#![cfg(unix)]

use accmos::{AccMoS, BuildCache, Compiler, DylibRunner, OptLevel, RunOptions};
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("accmos-serve-eq-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn dylib_runs_match_subprocess_runs_on_every_benchmark() {
    let dir = TempDir::new("sweep");
    let cache = BuildCache::at(dir.0.join("cache"));
    let steps = 400;

    for (name, _, _) in accmos_models::TABLE1 {
        for lanes in [1usize, 4] {
            let model = accmos_models::by_name(name);
            let pipeline = AccMoS::new().with_cache(cache.clone()).with_lanes(lanes);
            let pre = accmos::preprocess(&model)
                .unwrap_or_else(|e| panic!("{name}: preprocess: {e}"));
            let (tests, lane_tests) =
                accmos::fuzz::lane_stimulus(&pre, 8, 0xACC5 ^ lanes as u64, lanes);
            let opts = RunOptions { lane_tests, ..RunOptions::default() };

            let sim = pipeline
                .prepare(&model)
                .unwrap_or_else(|e| panic!("{name} lanes={lanes}: prepare: {e}"));
            let sub = sim
                .run(steps, &tests, &opts)
                .unwrap_or_else(|e| panic!("{name} lanes={lanes}: subprocess run: {e}"));

            let compiler = Compiler::detect()
                .unwrap()
                .with_opt(OptLevel::O3)
                .with_cache(cache.clone());
            let dylib = compiler
                .compile_shared(sim.program())
                .unwrap_or_else(|e| panic!("{name} lanes={lanes}: compile_shared: {e}"));
            let dy = DylibRunner::for_dylib(&dylib)
                .run(steps, &tests, &opts, None)
                .unwrap_or_else(|e| panic!("{name} lanes={lanes}: dylib run: {e}"));
            let report = dy.report;

            let tag = format!("{name} lanes={lanes}");
            assert_eq!(report.output_digest, sub.output_digest, "{tag}: digest");
            assert_eq!(report.steps, sub.steps, "{tag}: steps");
            assert_eq!(report.final_outputs, sub.final_outputs, "{tag}: final outputs");
            assert_eq!(report.diagnostics, sub.diagnostics, "{tag}: diagnostics");
            assert_eq!(report.coverage, sub.coverage, "{tag}: coverage");
            assert_eq!(
                report.lane_reports.len(),
                sub.lane_reports.len(),
                "{tag}: lane report count"
            );
            for (i, (dl, sl)) in
                report.lane_reports.iter().zip(sub.lane_reports.iter()).enumerate()
            {
                assert_eq!(dl.output_digest, sl.output_digest, "{tag}: lane {i} digest");
                assert_eq!(dl.diagnostics, sl.diagnostics, "{tag}: lane {i} diagnostics");
                assert_eq!(dl.final_outputs, sl.final_outputs, "{tag}: lane {i} outputs");
            }

            dylib.clean();
            sim.clean();
        }
    }
}
