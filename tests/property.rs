//! Property-based tests over the core data structures and invariants.

use accmos_ir::{BinOp, DataType, Scalar, TestVectors};
use accmos_parse::xml::{parse_document, XmlElement, XmlNode};
use accmos_testgen::{ModelGenConfig, RandomModelGen};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// XML round-trips
// ---------------------------------------------------------------------------

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_.-]{0,8}".prop_map(|s| s)
}

/// Text without leading/trailing whitespace (the writer normalizes
/// whitespace-only nodes away) and non-empty.
fn text_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9<>&\"' ]{1,24}".prop_filter("trimmed non-empty", |s| {
        let t = s.trim();
        !t.is_empty() && t == s
    })
}

fn attr_value_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9<>&\"'+,:. _-]{0,16}"
}

fn element_strategy() -> impl Strategy<Value = XmlElement> {
    let leaf = (
        name_strategy(),
        proptest::collection::vec((name_strategy(), attr_value_strategy()), 0..4),
        proptest::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| {
            let mut el = XmlElement::new(name);
            for (n, v) in attrs {
                if el.get_attr(&n).is_none() {
                    el.attrs.push((n, v));
                }
            }
            if let Some(t) = text {
                el.children.push(XmlNode::Text(t));
            }
            el
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), attr_value_strategy()), 0..4),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut el = XmlElement::new(name);
                for (n, v) in attrs {
                    if el.get_attr(&n).is_none() {
                        el.attrs.push((n, v));
                    }
                }
                for c in children {
                    el.children.push(XmlNode::Element(c));
                }
                el
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xml_write_parse_roundtrip(el in element_strategy()) {
        let doc = el.to_document();
        let back = parse_document(&doc).expect("generated document parses");
        prop_assert_eq!(back, el);
    }
}

// ---------------------------------------------------------------------------
// Scalar semantics
// ---------------------------------------------------------------------------

fn dtype_strategy() -> impl Strategy<Value = DataType> {
    proptest::sample::select(DataType::ALL.to_vec())
}

fn scalar_strategy() -> impl Strategy<Value = Scalar> {
    (dtype_strategy(), any::<i128>(), any::<f64>()).prop_map(|(dt, i, f)| {
        if dt.is_float() {
            Scalar::from_f64(dt, f)
        } else {
            Scalar::from_i128(dt, i)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `to_bits_u64`/`from_bits_u64` are exact inverses (including NaN
    /// payloads, which is what the output digest relies on).
    #[test]
    fn scalar_bits_roundtrip(s in scalar_strategy()) {
        let back = Scalar::from_bits_u64(s.dtype(), s.to_bits_u64());
        prop_assert_eq!(back.to_bits_u64(), s.to_bits_u64());
        prop_assert_eq!(back.dtype(), s.dtype());
    }

    /// Integer add/sub/mul wrap exactly like the i128 model truncated to
    /// the type's width (what `-fwrapv` C computes).
    #[test]
    fn integer_binops_match_wide_model(
        dt in dtype_strategy().prop_filter("int", |d| d.is_integer()),
        a in any::<i128>(),
        b in any::<i128>(),
        op in proptest::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Mul]),
    ) {
        let x = Scalar::from_i128(dt, a);
        let y = Scalar::from_i128(dt, b);
        let got = x.binop(op, y);
        let wide = match op {
            BinOp::Add => x.to_i128().wrapping_add(y.to_i128()),
            BinOp::Sub => x.to_i128().wrapping_sub(y.to_i128()),
            BinOp::Mul => x.to_i128().wrapping_mul(y.to_i128()),
            _ => unreachable!(),
        };
        prop_assert_eq!(got, Scalar::from_i128(dt, wide));
    }

    /// Division never panics and yields 0 on a zero divisor.
    #[test]
    fn division_is_total(
        dt in dtype_strategy().prop_filter("int", |d| d.is_integer()),
        a in any::<i128>(),
        b in any::<i128>(),
    ) {
        let x = Scalar::from_i128(dt, a);
        let y = Scalar::from_i128(dt, b);
        let q = x.binop(BinOp::Div, y);
        let r = x.binop(BinOp::Rem, y);
        if y.to_i128() == 0 {
            prop_assert_eq!(q, Scalar::zero(dt));
            prop_assert_eq!(r, Scalar::zero(dt));
        }
    }

    /// Casting into a type always produces a value representable in it
    /// (its round-trip through the same type is the identity).
    #[test]
    fn cast_is_idempotent(s in scalar_strategy(), to in dtype_strategy()) {
        let once = s.cast(to);
        let twice = once.cast(to);
        prop_assert_eq!(once.to_bits_u64(), twice.to_bits_u64());
        prop_assert_eq!(once.dtype(), to);
    }

    /// Float -> integer conversion saturates within the target range.
    #[test]
    fn float_to_int_saturates(
        v in any::<f64>(),
        to in dtype_strategy().prop_filter("int", |d| d.is_integer()),
    ) {
        let s = Scalar::F64(v).cast(to);
        let w = s.to_i128() as f64;
        prop_assert!(w >= to.min_f64() && w <= to.max_f64());
        if v.is_nan() {
            prop_assert_eq!(s.to_i128(), 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Test vectors
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV round-trip preserves every cell bit-for-bit (floats via the
    /// shortest round-tripping literal).
    #[test]
    fn test_vector_csv_roundtrip(
        cols in proptest::collection::vec(
            (dtype_strategy(), proptest::collection::vec(any::<i64>(), 1..8)),
            1..4,
        )
    ) {
        let mut tv = TestVectors::new();
        for (i, (dt, raws)) in cols.iter().enumerate() {
            let values: Vec<Scalar> = raws
                .iter()
                .map(|r| {
                    if dt.is_float() {
                        Scalar::from_f64(*dt, *r as f64 / 7.0)
                    } else {
                        Scalar::from_i128(*dt, *r as i128)
                    }
                })
                .collect();
            tv.push_column(&format!("c{i}"), *dt, values);
        }
        let back = TestVectors::from_csv(&tv.to_csv()).expect("csv parses");
        let rows = tv.rows();
        for col in 0..tv.width() {
            for step in 0..rows as u64 {
                prop_assert_eq!(
                    tv.value_at(col, step).to_bits_u64(),
                    back.value_at(col, step).to_bits_u64()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduling invariants on random models
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On any generated model: the execution order is a permutation of the
    /// actors, and every actor's data inputs are produced earlier unless
    /// the actor is a delay-class loop breaker.
    #[test]
    fn schedule_respects_dataflow(seed in 0u64..5000, actors in 5usize..40) {
        let model = RandomModelGen::new(ModelGenConfig {
            seed,
            actors,
            ..ModelGenConfig::default()
        })
        .generate();
        let pre = accmos::preprocess(&model).expect("random model preprocesses");
        let flat = &pre.flat;
        prop_assert_eq!(flat.order.len(), flat.actors.len());
        let mut pos = vec![usize::MAX; flat.actors.len()];
        for (i, id) in flat.order.iter().enumerate() {
            pos[id.0] = i;
        }
        prop_assert!(pos.iter().all(|p| *p != usize::MAX), "order is a permutation");
        for actor in &flat.actors {
            if actor.kind.breaks_algebraic_loops() {
                continue;
            }
            for sig in &actor.inputs {
                let src = flat.signal(*sig).source;
                prop_assert!(
                    pos[src.0] < pos[actor.id.0],
                    "{} must run before {}",
                    flat.actor(src).path,
                    actor.path
                );
            }
        }
    }

    /// Every random model round-trips through the MDLX text format.
    #[test]
    fn random_models_roundtrip_mdlx(seed in 0u64..5000) {
        let model = RandomModelGen::new(ModelGenConfig { seed, ..Default::default() })
            .generate();
        let text = accmos::write_mdlx(&model);
        let back = accmos::parse_mdlx(&text).expect("generated mdlx parses");
        prop_assert_eq!(back, model);
    }

    /// Interpreting the same model twice with the same stimulus is
    /// deterministic (digest-stable).
    #[test]
    fn interpretation_is_deterministic(seed in 0u64..2000) {
        use accmos::{Engine as _, NormalEngine, SimOptions};
        let model = RandomModelGen::new(ModelGenConfig {
            seed,
            actors: 16,
            ..Default::default()
        })
        .generate();
        let pre = accmos::preprocess(&model).expect("preprocess");
        let tests = accmos_testgen::random_tests(&pre, 8, seed);
        let a = NormalEngine::new().run(&pre, &tests, &SimOptions::steps(32));
        let b = NormalEngine::new().run(&pre, &tests, &SimOptions::steps(32));
        prop_assert_eq!(a.output_digest, b.output_digest);
        prop_assert_eq!(a.coverage, b.coverage);
        prop_assert_eq!(a.diagnostics, b.diagnostics);
    }
}
