//! Property-based tests over the core data structures and invariants.
//!
//! Implemented as seeded random sweeps over [`accmos_testgen::TestRng`]
//! (the workspace builds offline, so no external property-testing
//! framework is used). Every case is deterministic per seed: a failure
//! message always carries enough context to replay it.

use accmos_ir::{BinOp, DataType, Scalar, TestVectors};
use accmos_parse::xml::{parse_document, XmlElement, XmlNode};
use accmos_testgen::{ModelGenConfig, RandomModelGen, TestRng};

// ---------------------------------------------------------------------------
// XML round-trips
// ---------------------------------------------------------------------------

fn random_pick(rng: &mut TestRng, chars: &[char]) -> char {
    chars[rng.gen_range(0..chars.len())]
}

fn random_name(rng: &mut TestRng) -> String {
    let first: Vec<char> = ('a'..='z').chain('A'..='Z').collect();
    let rest: Vec<char> =
        ('a'..='z').chain('A'..='Z').chain('0'..='9').chain("_.-".chars()).collect();
    let mut s = String::new();
    s.push(random_pick(rng, &first));
    for _ in 0..rng.gen_range(0..=8usize) {
        s.push(random_pick(rng, &rest));
    }
    s
}

/// Text without leading/trailing whitespace (the writer normalizes
/// whitespace-only nodes away) and non-empty.
fn random_text(rng: &mut TestRng) -> String {
    let chars: Vec<char> =
        ('a'..='z').chain('0'..='9').chain("<>&\"' ".chars()).collect();
    loop {
        let len = rng.gen_range(1..=24usize);
        let s: String = (0..len).map(|_| random_pick(rng, &chars)).collect();
        let t = s.trim();
        if !t.is_empty() && t == s {
            return s;
        }
    }
}

fn random_attr_value(rng: &mut TestRng) -> String {
    let chars: Vec<char> =
        ('a'..='z').chain('0'..='9').chain("<>&\"'+,:. _-".chars()).collect();
    let len = rng.gen_range(0..=16usize);
    (0..len).map(|_| random_pick(rng, &chars)).collect()
}

fn random_element(rng: &mut TestRng, depth: usize) -> XmlElement {
    let mut el = XmlElement::new(random_name(rng));
    for _ in 0..rng.gen_range(0..4usize) {
        let n = random_name(rng);
        if el.get_attr(&n).is_none() {
            el.attrs.push((n, random_attr_value(rng)));
        }
    }
    if depth == 0 || rng.gen_bool(0.4) {
        if rng.gen_bool(0.6) {
            el.children.push(XmlNode::Text(random_text(rng)));
        }
    } else {
        for _ in 0..rng.gen_range(0..4usize) {
            el.children.push(XmlNode::Element(random_element(rng, depth - 1)));
        }
    }
    el
}

#[test]
fn xml_write_parse_roundtrip() {
    for seed in 0..64u64 {
        let mut rng = TestRng::seed_from_u64(seed);
        let el = random_element(&mut rng, 3);
        let doc = el.to_document();
        let back = parse_document(&doc).expect("generated document parses");
        assert_eq!(back, el, "seed {seed}: document was {doc}");
    }
}

// ---------------------------------------------------------------------------
// Scalar semantics
// ---------------------------------------------------------------------------

fn random_dtype(rng: &mut TestRng) -> DataType {
    DataType::ALL[rng.gen_range(0..DataType::ALL.len())]
}

fn random_bits_f64(rng: &mut TestRng) -> f64 {
    // Raw bit patterns cover NaNs, infinities and subnormals.
    f64::from_bits(rng.next_u64())
}

fn random_scalar(rng: &mut TestRng) -> Scalar {
    let dt = random_dtype(rng);
    if dt.is_float() {
        Scalar::from_f64(dt, random_bits_f64(rng))
    } else {
        Scalar::from_i128(dt, rng.gen_range(i128::MIN..=i128::MAX))
    }
}

/// `to_bits_u64`/`from_bits_u64` are exact inverses (including NaN
/// payloads, which is what the output digest relies on).
#[test]
fn scalar_bits_roundtrip() {
    let mut rng = TestRng::seed_from_u64(0x5CA1);
    for case in 0..512 {
        let s = random_scalar(&mut rng);
        let back = Scalar::from_bits_u64(s.dtype(), s.to_bits_u64());
        assert_eq!(back.to_bits_u64(), s.to_bits_u64(), "case {case}: {s:?}");
        assert_eq!(back.dtype(), s.dtype(), "case {case}: {s:?}");
    }
}

/// Integer add/sub/mul wrap exactly like the i128 model truncated to
/// the type's width (what `-fwrapv` C computes).
#[test]
fn integer_binops_match_wide_model() {
    let mut rng = TestRng::seed_from_u64(0xB1);
    let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul];
    for case in 0..512 {
        let dt = loop {
            let d = random_dtype(&mut rng);
            if d.is_integer() {
                break d;
            }
        };
        let x = Scalar::from_i128(dt, rng.gen_range(i128::MIN..=i128::MAX));
        let y = Scalar::from_i128(dt, rng.gen_range(i128::MIN..=i128::MAX));
        let op = ops[rng.gen_range(0..ops.len())];
        let got = x.binop(op, y);
        let wide = match op {
            BinOp::Add => x.to_i128().wrapping_add(y.to_i128()),
            BinOp::Sub => x.to_i128().wrapping_sub(y.to_i128()),
            BinOp::Mul => x.to_i128().wrapping_mul(y.to_i128()),
            _ => unreachable!(),
        };
        assert_eq!(got, Scalar::from_i128(dt, wide), "case {case}: {x:?} {op:?} {y:?}");
    }
}

/// Division never panics and yields 0 on a zero divisor.
#[test]
fn division_is_total() {
    let mut rng = TestRng::seed_from_u64(0xD1);
    for case in 0..512 {
        let dt = loop {
            let d = random_dtype(&mut rng);
            if d.is_integer() {
                break d;
            }
        };
        let x = Scalar::from_i128(dt, rng.gen_range(i128::MIN..=i128::MAX));
        // Bias towards zero divisors so the special case is actually hit.
        let y = if rng.gen_bool(0.25) {
            Scalar::zero(dt)
        } else {
            Scalar::from_i128(dt, rng.gen_range(i128::MIN..=i128::MAX))
        };
        let q = x.binop(BinOp::Div, y);
        let r = x.binop(BinOp::Rem, y);
        if y.to_i128() == 0 {
            assert_eq!(q, Scalar::zero(dt), "case {case}: {x:?} / 0");
            assert_eq!(r, Scalar::zero(dt), "case {case}: {x:?} % 0");
        }
    }
}

/// Casting into a type always produces a value representable in it
/// (its round-trip through the same type is the identity).
#[test]
fn cast_is_idempotent() {
    let mut rng = TestRng::seed_from_u64(0xCA57);
    for case in 0..512 {
        let s = random_scalar(&mut rng);
        let to = random_dtype(&mut rng);
        let once = s.cast(to);
        let twice = once.cast(to);
        assert_eq!(once.to_bits_u64(), twice.to_bits_u64(), "case {case}: {s:?} as {to}");
        assert_eq!(once.dtype(), to, "case {case}: {s:?} as {to}");
    }
}

/// Float -> integer conversion saturates within the target range.
#[test]
fn float_to_int_saturates() {
    let mut rng = TestRng::seed_from_u64(0xF10A7);
    for case in 0..512 {
        let v = random_bits_f64(&mut rng);
        let to = loop {
            let d = random_dtype(&mut rng);
            if d.is_integer() {
                break d;
            }
        };
        let s = Scalar::F64(v).cast(to);
        let w = s.to_i128() as f64;
        assert!(
            w >= to.min_f64() && w <= to.max_f64(),
            "case {case}: {v} as {to} gave {w}"
        );
        if v.is_nan() {
            assert_eq!(s.to_i128(), 0, "case {case}: NaN as {to}");
        }
    }
}

// ---------------------------------------------------------------------------
// Test vectors
// ---------------------------------------------------------------------------

/// CSV round-trip preserves the stimulus *sequence* bit-for-bit, even for
/// columns of unequal (co-prime) lengths and for steps far beyond
/// `rows()`. The export materializes every column to the common cycle
/// period (LCM of the column lengths), so the generated C simulator —
/// which cycles over the row count of the file — reads the same stimulus
/// the interpreter computes from the in-memory columns.
#[test]
fn test_vector_csv_roundtrip_past_rows() {
    let mut rng = TestRng::seed_from_u64(0xC5);
    for case in 0..64 {
        let ncols = rng.gen_range(1..=4usize);
        let mut tv = TestVectors::new();
        for i in 0..ncols {
            let dt = random_dtype(&mut rng);
            let len = rng.gen_range(1..=8usize);
            let values: Vec<Scalar> = (0..len)
                .map(|_| {
                    let raw = rng.gen_range(i128::from(i64::MIN)..=i128::from(i64::MAX));
                    if dt.is_float() {
                        Scalar::from_f64(dt, raw as f64 / 7.0)
                    } else {
                        Scalar::from_i128(dt, raw)
                    }
                })
                .collect();
            tv.push_column(&format!("c{i}"), dt, values);
        }
        let back = TestVectors::from_csv(&tv.to_csv()).expect("csv parses");
        // Check parity well past rows(): unequal column lengths only
        // diverge from a naive rows()-period export at step >= rows().
        let horizon = (tv.rows() as u64) * 5 + 7;
        for col in 0..tv.width() {
            for step in 0..horizon {
                assert_eq!(
                    tv.value_at(col, step).to_bits_u64(),
                    back.value_at(col, step).to_bits_u64(),
                    "case {case}: column {col}, step {step}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduling invariants on random models
// ---------------------------------------------------------------------------

/// On any generated model: the execution order is a permutation of the
/// actors, and every actor's data inputs are produced earlier unless
/// the actor is a delay-class loop breaker.
#[test]
fn schedule_respects_dataflow() {
    let mut rng = TestRng::seed_from_u64(0x5EED);
    for _ in 0..24 {
        let seed = rng.gen_range(0..5000u64);
        let actors = rng.gen_range(5..40usize);
        let model = RandomModelGen::new(ModelGenConfig {
            seed,
            actors,
            ..ModelGenConfig::default()
        })
        .generate();
        let pre = accmos::preprocess(&model).expect("random model preprocesses");
        let flat = &pre.flat;
        assert_eq!(flat.order.len(), flat.actors.len(), "seed {seed}");
        let mut pos = vec![usize::MAX; flat.actors.len()];
        for (i, id) in flat.order.iter().enumerate() {
            pos[id.0] = i;
        }
        assert!(pos.iter().all(|p| *p != usize::MAX), "seed {seed}: order is a permutation");
        for actor in &flat.actors {
            if actor.kind.breaks_algebraic_loops() {
                continue;
            }
            for sig in &actor.inputs {
                let src = flat.signal(*sig).source;
                assert!(
                    pos[src.0] < pos[actor.id.0],
                    "seed {seed}: {} must run before {}",
                    flat.actor(src).path,
                    actor.path
                );
            }
        }
    }
}

/// Every random model round-trips through the MDLX text format.
#[test]
fn random_models_roundtrip_mdlx() {
    let mut rng = TestRng::seed_from_u64(0x3D1);
    for _ in 0..24 {
        let seed = rng.gen_range(0..5000u64);
        let model = RandomModelGen::new(ModelGenConfig { seed, ..Default::default() })
            .generate();
        let text = accmos::write_mdlx(&model);
        let back = accmos::parse_mdlx(&text).expect("generated mdlx parses");
        assert_eq!(back, model, "seed {seed}");
    }
}

/// Interpreting the same model twice with the same stimulus is
/// deterministic (digest-stable).
#[test]
fn interpretation_is_deterministic() {
    use accmos::{Engine as _, NormalEngine, SimOptions};
    let mut rng = TestRng::seed_from_u64(0x1D);
    for _ in 0..24 {
        let seed = rng.gen_range(0..2000u64);
        let model = RandomModelGen::new(ModelGenConfig {
            seed,
            actors: 16,
            ..Default::default()
        })
        .generate();
        let pre = accmos::preprocess(&model).expect("preprocess");
        let tests = accmos_testgen::random_tests(&pre, 8, seed);
        let a = NormalEngine::new().run(&pre, &tests, &SimOptions::steps(32));
        let b = NormalEngine::new().run(&pre, &tests, &SimOptions::steps(32));
        assert_eq!(a.output_digest, b.output_digest, "seed {seed}");
        assert_eq!(a.coverage, b.coverage, "seed {seed}");
        assert_eq!(a.diagnostics, b.diagnostics, "seed {seed}");
    }
}
