//! Chaos test: a mixed batch where a third of the simulators misbehave.
//!
//! Eight healthy model jobs share the pool with four copies of the
//! `faultsim` binary (hang, SIGABRT crash, garbled protocol, transient
//! failure). The batch must complete promptly, classify every fault,
//! quarantine the crasher, and leave the healthy jobs bit-identical to a
//! serial fault-free run.

#![cfg(unix)]

use accmos::{
    AccMoS, AccMoSError, BatchJob, BatchRunner, ExecPolicy, FailureKind, RunOptions,
};
use accmos_ir::{ActorKind, DataType, Model, ModelBuilder, Scalar, TestVectors};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn gain_model(name: &str, gain: i32) -> Model {
    let mut b = ModelBuilder::new(name);
    b.inport("In", DataType::I32);
    b.actor("G", ActorKind::Gain { gain: Scalar::I32(gain) });
    b.outport("Out", DataType::I32);
    b.wire("In", "G");
    b.wire("G", "Out");
    b.build().unwrap()
}

fn tests_for(value: i32) -> TestVectors {
    TestVectors::constant("In", Scalar::I32(value), 3)
}

/// Copy the faultsim binary as `faultsim-<mode>`; the name selects the
/// fault, and the distinct path quarantines independently.
fn fault_exe(dir: &Path, mode: &str) -> PathBuf {
    let src = PathBuf::from(env!("CARGO_BIN_EXE_faultsim"));
    let dst = dir.join(format!("faultsim-{mode}"));
    std::fs::copy(&src, &dst).unwrap();
    dst
}

fn failure_kind(err: &AccMoSError) -> Option<FailureKind> {
    match err {
        AccMoSError::Backend(e) => e.failure_kind(),
        _ => None,
    }
}

#[test]
fn chaos_batch_survives_misbehaving_simulators() {
    let dir = std::env::temp_dir().join(format!("accmos-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let policy = ExecPolicy::default()
        .with_kill_timeout(Duration::from_millis(200))
        .with_retries(1)
        .with_backoff(Duration::from_millis(10))
        .with_quarantine_after(2);
    let pipeline = AccMoS::new().without_cache().with_exec_policy(policy);

    let models = [gain_model("ChaosA", 2), gain_model("ChaosB", 3)];

    // Serial fault-free reference for the healthy jobs' digests.
    let mut serial = Vec::new();
    for model in &models {
        let sim = pipeline.prepare(model).unwrap();
        for seed in 0..4 {
            let r = sim.run(40, &tests_for(seed + 1), &RunOptions::default()).unwrap();
            serial.push(r.output_digest);
        }
        sim.clean();
    }

    // 12 jobs: 8 healthy (2 models x 4 stimuli) + 4 faults.
    let mut jobs = Vec::new();
    for (m, model) in models.iter().enumerate() {
        for seed in 0..4 {
            jobs.push(BatchJob::model(
                format!("healthy-{m}-{seed}"),
                model.clone(),
                tests_for(seed + 1),
                40,
            ));
        }
    }
    let fault_tests = TestVectors::constant("In", Scalar::I32(1), 2);
    for mode in ["hang", "crash", "garbled", "flaky"] {
        let exe = fault_exe(&dir, mode);
        jobs.push(BatchJob::executable(mode, exe, &dir, fault_tests.clone(), 40));
    }
    assert_eq!(jobs.len(), 12);

    let start = Instant::now();
    let report = BatchRunner::new(pipeline).with_workers(6).run(jobs).unwrap();
    let wall = start.elapsed();

    // Healthy jobs are unaffected by the chaos around them.
    for (i, job) in report.jobs[..8].iter().enumerate() {
        let r = job
            .report
            .as_ref()
            .unwrap_or_else(|e| panic!("{} failed: {e}", job.label));
        assert_eq!(r.output_digest, serial[i], "{} diverged from serial run", job.label);
        assert!(!job.degraded(), "{} must not degrade", job.label);
    }

    let by_label = |l: &str| report.jobs.iter().find(|j| j.label == l).unwrap();

    // Hang: killed at the 200 ms deadline, classified Timeout, no retry.
    let hang = by_label("hang");
    let err = hang.report.as_ref().unwrap_err();
    assert_eq!(failure_kind(err), Some(FailureKind::Timeout), "hang: {err}");
    assert_eq!(hang.retries, 0, "timeouts are not retried");
    assert!(
        hang.run_time < Duration::from_secs(2),
        "hang must die near the deadline, held {:?}",
        hang.run_time
    );

    // Crash: retried once (two attempts, two signal deaths), quarantined.
    let crash = by_label("crash");
    let err = crash.report.as_ref().unwrap_err();
    assert!(
        matches!(failure_kind(err), Some(FailureKind::Crashed { .. })),
        "crash: {err}"
    );
    assert_eq!(crash.retries, 1);

    // Garbled output: deterministic corruption, not retried.
    let garbled = by_label("garbled");
    let err = garbled.report.as_ref().unwrap_err();
    assert_eq!(failure_kind(err), Some(FailureKind::ProtocolCorrupt), "garbled: {err}");
    assert_eq!(garbled.retries, 0);

    // Flaky: one transient failure, then a real report.
    let flaky = by_label("flaky");
    let r = flaky.report.as_ref().unwrap_or_else(|e| panic!("flaky: {e}"));
    assert_eq!(flaky.retries, 1, "exactly one retry consumed");
    assert_eq!(r.steps, 40);

    let s = &report.summary;
    assert_eq!(s.jobs, 12);
    assert_eq!(s.failures, 3, "hang + crash + garbled fail; flaky recovers");
    assert_eq!(s.quarantined, 1, "only the crasher reaches quarantine");
    assert!(s.retries >= 2, "crash and flaky each consumed a retry");
    assert_eq!(s.degraded, 0, "raw executables have no interpreter to fall back to");

    // Per-run scratch is cleaned even for killed processes.
    let leftovers: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("tests-") && n.ends_with(".csv"))
        })
        .collect();
    assert!(leftovers.is_empty(), "scratch files leaked: {leftovers:?}");

    // Faults cost at most their kill deadline plus bounded retries — the
    // batch never inherits a hang.
    assert!(wall < Duration::from_secs(60), "chaos batch took {wall:?}");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The supervisor's abandoned-reader seal: a killed simulator whose
/// detached straggler completes the `ACCMOS:` protocol *after* the
/// reader was abandoned must classify as a plain Timeout whose detail
/// keeps the bytes that arrived in time — and never the late flush,
/// which could otherwise turn a hang into a spuriously "complete" or
/// differently-classified attempt.
#[test]
fn hang_then_flush_keeps_partial_capture_and_drops_the_late_flush() {
    let dir = std::env::temp_dir().join(format!("accmos-chaos-hangflush-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let policy = ExecPolicy::default()
        .with_kill_timeout(Duration::from_millis(200))
        .with_retries(0)
        .with_backoff(Duration::from_millis(10));
    let pipeline = AccMoS::new().without_cache().with_exec_policy(policy);
    let exe = fault_exe(&dir, "hangflush");
    let jobs =
        vec![BatchJob::executable("hangflush", exe, &dir, TestVectors::new(), 5)];
    let report = BatchRunner::new(pipeline).run(jobs).unwrap();

    let err = report.jobs[0].report.as_ref().unwrap_err();
    assert_eq!(failure_kind(err), Some(FailureKind::Timeout), "hangflush: {err}");
    let AccMoSError::Backend(accmos::BackendError::Supervised { attempts, detail, .. }) = err
    else {
        panic!("expected a supervised timeout, got {err}");
    };
    assert_eq!(*attempts, 1, "timeouts are not retried");
    assert!(
        detail.contains("ACCMOS:TIME_"),
        "bytes flushed before the kill must survive into the detail: {detail}"
    );
    assert!(
        !detail.contains("ACCMOS:END"),
        "the straggler's late flush leaked into the classification: {detail}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A mixed-fault batch into a cache-backed pipeline must leave a ledger
/// whose outcome/retry counts match the batch summary exactly — the
/// telemetry layer may not flatter or hide any failure mode.
#[test]
fn chaos_batch_ledger_records_outcomes_faithfully() {
    use std::os::unix::fs::PermissionsExt;
    let dir = std::env::temp_dir().join(format!("accmos-chaos-ledger-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let policy = ExecPolicy::default()
        .with_kill_timeout(Duration::from_millis(500))
        .with_retries(1)
        .with_backoff(Duration::from_millis(10))
        .with_quarantine_after(2);
    let pipeline = AccMoS::new()
        .with_cache(accmos::BuildCache::at(&dir))
        .with_exec_policy(policy);

    // A prepared sim whose binary is sabotaged to die on SIGSEGV: its
    // first job crashes into quarantine, the rest degrade.
    let sabotaged = std::sync::Arc::new(pipeline.prepare(&gain_model("ChaosQ", 3)).unwrap());
    let exe = sabotaged.simulator().exe().to_path_buf();
    std::fs::write(&exe, "#!/bin/sh\nkill -SEGV $$\n").unwrap();
    std::fs::set_permissions(&exe, std::fs::Permissions::from_mode(0o755)).unwrap();

    let fault_tests = TestVectors::constant("In", Scalar::I32(1), 2);
    let jobs = vec![
        BatchJob::model("healthy-0", gain_model("ChaosL", 2), tests_for(1), 40),
        BatchJob::model("healthy-1", gain_model("ChaosL", 2), tests_for(2), 40),
        BatchJob::prepared("q0", std::sync::Arc::clone(&sabotaged), tests_for(3), 5),
        BatchJob::prepared("q1", std::sync::Arc::clone(&sabotaged), tests_for(4), 5),
        BatchJob::prepared("q2", std::sync::Arc::clone(&sabotaged), tests_for(5), 5),
        BatchJob::executable("flaky", fault_exe(&dir, "flaky"), &dir, fault_tests.clone(), 40),
        BatchJob::executable("garbled", fault_exe(&dir, "garbled"), &dir, fault_tests, 40),
    ];
    // One worker => deterministic order: q0's crash + retry reach the
    // quarantine threshold, so q0 itself degrades (post-failure check)
    // and q1/q2 skip the binary entirely.
    let report = BatchRunner::new(pipeline.clone()).with_workers(1).run(jobs).unwrap();
    let s = &report.summary;
    assert_eq!(s.degraded, 3, "q0, q1 and q2 all degrade");
    assert_eq!(s.quarantined, 1);
    assert_eq!(s.failures, 1, "only garbled has no fallback");
    assert_eq!(s.retries, 1, "flaky consumed one retry");

    let view = pipeline.ledger().expect("cache-backed pipeline has a ledger").read();
    assert_eq!(view.skipped, 0, "every ledger line parses");
    assert!(!view.truncated_tail);
    assert_eq!(view.records.len(), 7, "one record per job");

    let count = |outcome: &str| view.records.iter().filter(|r| r.outcome == outcome).count();
    assert_eq!(count("ok"), 3, "healthy-0, healthy-1, flaky");
    assert_eq!(count("degraded"), s.degraded);
    assert_eq!(count("failed"), s.failures);
    let retries: u64 = view.records.iter().map(|r| r.retries).sum();
    assert_eq!(retries, s.retries, "per-record retries sum to the summary");

    for r in &view.records {
        assert_eq!(r.schema, accmos::RunLedger::SCHEMA);
        assert_eq!(r.source, "batch");
    }
    for r in view.records.iter().filter(|r| r.outcome == "ok") {
        assert!(r.phases.run_us > 0, "{}: a real run takes at least 1µs", r.model);
    }
    for r in view.records.iter().filter(|r| r.outcome == "degraded") {
        assert_eq!(r.engine, "sse", "degraded jobs ran the interpreter");
        assert!(!r.note.is_empty(), "degradation reason recorded for {}", r.model);
    }
    assert!(
        view.records.iter().any(|r| r.outcome == "degraded" && r.note.contains("quarantined")),
        "at least one degradation names the quarantine"
    );
    let healthy: Vec<_> =
        view.records.iter().filter(|r| r.model == "ChaosL").collect();
    assert_eq!(healthy.len(), 2);
    assert!(
        healthy.iter().any(|r| r.phases.compile_us > 0),
        "compiled jobs carry the shared compile span"
    );

    sabotaged.clean();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Lane-parallel jobs ride the same supervision rails as scalar ones: a
/// healthy lane job aggregates exactly like serial scalar runs, a
/// sabotaged lane binary crashes into quarantine, and the interpreter
/// fallback reproduces the fused simulator's aggregation bit for bit —
/// with the lane width recorded in the ledger either way.
#[test]
fn lane_jobs_quarantine_and_degrade_bit_identically() {
    use std::os::unix::fs::PermissionsExt;
    use std::sync::Arc;
    let dir = std::env::temp_dir().join(format!("accmos-chaos-lane-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let lanes = 4;
    let policy = ExecPolicy::default()
        .with_kill_timeout(Duration::from_millis(500))
        .with_retries(1)
        .with_backoff(Duration::from_millis(10))
        .with_quarantine_after(2);
    let pipeline = AccMoS::new()
        .with_cache(accmos::BuildCache::at(&dir))
        .with_exec_policy(policy)
        .with_lanes(lanes);

    let healthy_model = gain_model("ChaosLaneH", 2);
    let crashy_model = gain_model("ChaosLaneQ", 5);
    let lane_opts = RunOptions {
        lane_tests: (2..=lanes as i32).map(tests_for).collect(),
        ..RunOptions::default()
    };

    // Serial scalar reference: a lane run's aggregate digest is the FNV
    // fold of the per-lane digests, in lane order.
    let fold_scalar = |model: &accmos_ir::Model| {
        let sim = AccMoS::new().without_cache().prepare(model).unwrap();
        let mut fold = accmos_ir::OutputDigest::new();
        for v in 1..=lanes as i32 {
            let r = sim.run(40, &tests_for(v), &RunOptions::default()).unwrap();
            fold.write_u64(r.output_digest);
        }
        sim.clean();
        fold.finish()
    };
    let expected_healthy = fold_scalar(&healthy_model);
    let expected_crashy = fold_scalar(&crashy_model);

    // Sabotage the crashy lane build after compilation: it dies on
    // SIGSEGV, reaches the quarantine threshold, and both its jobs fall
    // back to the interpreter's lane aggregation.
    let sabotaged = Arc::new(pipeline.prepare(&crashy_model).unwrap());
    let exe = sabotaged.simulator().exe().to_path_buf();
    std::fs::write(&exe, "#!/bin/sh\nkill -SEGV $$\n").unwrap();
    std::fs::set_permissions(&exe, std::fs::Permissions::from_mode(0o755)).unwrap();

    let jobs = vec![
        BatchJob::model("lane-healthy", healthy_model, tests_for(1), 40)
            .with_opts(lane_opts.clone()),
        BatchJob::prepared("lane-q0", Arc::clone(&sabotaged), tests_for(1), 40)
            .with_opts(lane_opts.clone()),
        BatchJob::prepared("lane-q1", Arc::clone(&sabotaged), tests_for(1), 40)
            .with_opts(lane_opts),
    ];
    let report = BatchRunner::new(pipeline.clone()).with_workers(1).run(jobs).unwrap();

    let healthy = &report.jobs[0];
    let r = healthy.report.as_ref().unwrap_or_else(|e| panic!("lane-healthy: {e}"));
    assert!(!healthy.degraded(), "healthy lane job must run compiled");
    assert_eq!(r.lane_width(), lanes as u64);
    assert_eq!(r.output_digest, expected_healthy, "fused aggregate != scalar fold");

    for job in &report.jobs[1..] {
        assert!(job.degraded(), "{}: quarantined lane job must degrade", job.label);
        let r = job.report.as_ref().unwrap_or_else(|e| panic!("{}: {e}", job.label));
        assert_eq!(r.lane_width(), lanes as u64, "{}", job.label);
        assert_eq!(
            r.output_digest, expected_crashy,
            "{}: interpreter lane aggregation diverged from the fused layout",
            job.label
        );
    }
    assert_eq!(report.summary.quarantined, 1, "one binary reaches quarantine");
    assert_eq!(report.summary.degraded, 2, "both its jobs degrade");

    // The ledger carries the lane width for compiled and degraded lane
    // jobs alike, so `accmos trends` can baseline them apart.
    let view = pipeline.ledger().unwrap().read();
    let batch: Vec<_> = view.records.iter().filter(|r| r.source == "batch").collect();
    assert_eq!(batch.len(), 3);
    for rec in batch {
        assert_eq!(rec.lanes, lanes as u64, "{}: ledger lane width", rec.model);
    }

    sabotaged.clean();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Quarantine decisions persist in the cache directory: a second batch
/// (fresh pipeline and supervisor, same cache dir) must refuse a binary
/// the first batch quarantined, and the ledger must say so.
#[test]
fn quarantine_persists_across_batches_sharing_a_cache_dir() {
    let dir = std::env::temp_dir().join(format!("accmos-chaos-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let policy = ExecPolicy::default()
        .with_kill_timeout(Duration::from_millis(500))
        .with_retries(1)
        .with_backoff(Duration::from_millis(10))
        .with_quarantine_after(2);
    let exe = fault_exe(&dir, "crash");
    let fault_tests = TestVectors::constant("In", Scalar::I32(1), 2);

    // Batch 1: two attempts (one retry), two signal deaths — quarantined.
    let pipeline1 = AccMoS::new()
        .with_cache(accmos::BuildCache::at(&dir))
        .with_exec_policy(policy.clone());
    let first = BatchRunner::new(pipeline1)
        .run(vec![BatchJob::executable("crash", &exe, &dir, fault_tests.clone(), 40)])
        .unwrap();
    assert_eq!(first.summary.quarantined, 1);
    assert!(
        matches!(
            first.jobs[0].report.as_ref().unwrap_err(),
            AccMoSError::Backend(accmos::BackendError::Supervised { .. })
        ),
        "first batch sees the crash itself"
    );

    // Batch 2: a *fresh* pipeline sharing the cache dir inherits the
    // quarantine from disk and refuses the binary without running it.
    let pipeline2 = AccMoS::new()
        .with_cache(accmos::BuildCache::at(&dir))
        .with_exec_policy(policy);
    let second = BatchRunner::new(pipeline2.clone())
        .run(vec![BatchJob::executable("crash", &exe, &dir, fault_tests, 40)])
        .unwrap();
    let err = second.jobs[0].report.as_ref().unwrap_err();
    assert!(
        matches!(err, AccMoSError::Backend(accmos::BackendError::Quarantined { .. })),
        "second batch refuses the quarantined binary: {err}"
    );
    assert_eq!(second.jobs[0].retries, 0, "a refused binary is never executed");
    assert_eq!(second.summary.quarantined, 1, "inherited quarantine is reported");

    let view = pipeline2.ledger().unwrap().read();
    assert_eq!(view.records.len(), 2, "both batches appended to one ledger");
    assert_eq!(view.records[0].outcome, "failed");
    assert_eq!(view.records[1].outcome, "quarantined");
    assert!(view.records[1].note.contains("quarantined"));

    std::fs::remove_dir_all(&dir).unwrap();
}
