//! Chaos test: a mixed batch where a third of the simulators misbehave.
//!
//! Eight healthy model jobs share the pool with four copies of the
//! `faultsim` binary (hang, SIGABRT crash, garbled protocol, transient
//! failure). The batch must complete promptly, classify every fault,
//! quarantine the crasher, and leave the healthy jobs bit-identical to a
//! serial fault-free run.

#![cfg(unix)]

use accmos::{
    AccMoS, AccMoSError, BatchJob, BatchRunner, ExecPolicy, FailureKind, RunOptions,
};
use accmos_ir::{ActorKind, DataType, Model, ModelBuilder, Scalar, TestVectors};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn gain_model(name: &str, gain: i32) -> Model {
    let mut b = ModelBuilder::new(name);
    b.inport("In", DataType::I32);
    b.actor("G", ActorKind::Gain { gain: Scalar::I32(gain) });
    b.outport("Out", DataType::I32);
    b.wire("In", "G");
    b.wire("G", "Out");
    b.build().unwrap()
}

fn tests_for(value: i32) -> TestVectors {
    TestVectors::constant("In", Scalar::I32(value), 3)
}

/// Copy the faultsim binary as `faultsim-<mode>`; the name selects the
/// fault, and the distinct path quarantines independently.
fn fault_exe(dir: &Path, mode: &str) -> PathBuf {
    let src = PathBuf::from(env!("CARGO_BIN_EXE_faultsim"));
    let dst = dir.join(format!("faultsim-{mode}"));
    std::fs::copy(&src, &dst).unwrap();
    dst
}

fn failure_kind(err: &AccMoSError) -> Option<FailureKind> {
    match err {
        AccMoSError::Backend(e) => e.failure_kind(),
        _ => None,
    }
}

#[test]
fn chaos_batch_survives_misbehaving_simulators() {
    let dir = std::env::temp_dir().join(format!("accmos-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let policy = ExecPolicy::default()
        .with_kill_timeout(Duration::from_millis(200))
        .with_retries(1)
        .with_backoff(Duration::from_millis(10))
        .with_quarantine_after(2);
    let pipeline = AccMoS::new().without_cache().with_exec_policy(policy);

    let models = [gain_model("ChaosA", 2), gain_model("ChaosB", 3)];

    // Serial fault-free reference for the healthy jobs' digests.
    let mut serial = Vec::new();
    for model in &models {
        let sim = pipeline.prepare(model).unwrap();
        for seed in 0..4 {
            let r = sim.run(40, &tests_for(seed + 1), &RunOptions::default()).unwrap();
            serial.push(r.output_digest);
        }
        sim.clean();
    }

    // 12 jobs: 8 healthy (2 models x 4 stimuli) + 4 faults.
    let mut jobs = Vec::new();
    for (m, model) in models.iter().enumerate() {
        for seed in 0..4 {
            jobs.push(BatchJob::model(
                format!("healthy-{m}-{seed}"),
                model.clone(),
                tests_for(seed + 1),
                40,
            ));
        }
    }
    let fault_tests = TestVectors::constant("In", Scalar::I32(1), 2);
    for mode in ["hang", "crash", "garbled", "flaky"] {
        let exe = fault_exe(&dir, mode);
        jobs.push(BatchJob::executable(mode, exe, &dir, fault_tests.clone(), 40));
    }
    assert_eq!(jobs.len(), 12);

    let start = Instant::now();
    let report = BatchRunner::new(pipeline).with_workers(6).run(jobs).unwrap();
    let wall = start.elapsed();

    // Healthy jobs are unaffected by the chaos around them.
    for (i, job) in report.jobs[..8].iter().enumerate() {
        let r = job
            .report
            .as_ref()
            .unwrap_or_else(|e| panic!("{} failed: {e}", job.label));
        assert_eq!(r.output_digest, serial[i], "{} diverged from serial run", job.label);
        assert!(!job.degraded(), "{} must not degrade", job.label);
    }

    let by_label = |l: &str| report.jobs.iter().find(|j| j.label == l).unwrap();

    // Hang: killed at the 200 ms deadline, classified Timeout, no retry.
    let hang = by_label("hang");
    let err = hang.report.as_ref().unwrap_err();
    assert_eq!(failure_kind(err), Some(FailureKind::Timeout), "hang: {err}");
    assert_eq!(hang.retries, 0, "timeouts are not retried");
    assert!(
        hang.run_time < Duration::from_secs(2),
        "hang must die near the deadline, held {:?}",
        hang.run_time
    );

    // Crash: retried once (two attempts, two signal deaths), quarantined.
    let crash = by_label("crash");
    let err = crash.report.as_ref().unwrap_err();
    assert!(
        matches!(failure_kind(err), Some(FailureKind::Crashed { .. })),
        "crash: {err}"
    );
    assert_eq!(crash.retries, 1);

    // Garbled output: deterministic corruption, not retried.
    let garbled = by_label("garbled");
    let err = garbled.report.as_ref().unwrap_err();
    assert_eq!(failure_kind(err), Some(FailureKind::ProtocolCorrupt), "garbled: {err}");
    assert_eq!(garbled.retries, 0);

    // Flaky: one transient failure, then a real report.
    let flaky = by_label("flaky");
    let r = flaky.report.as_ref().unwrap_or_else(|e| panic!("flaky: {e}"));
    assert_eq!(flaky.retries, 1, "exactly one retry consumed");
    assert_eq!(r.steps, 40);

    let s = &report.summary;
    assert_eq!(s.jobs, 12);
    assert_eq!(s.failures, 3, "hang + crash + garbled fail; flaky recovers");
    assert_eq!(s.quarantined, 1, "only the crasher reaches quarantine");
    assert!(s.retries >= 2, "crash and flaky each consumed a retry");
    assert_eq!(s.degraded, 0, "raw executables have no interpreter to fall back to");

    // Per-run scratch is cleaned even for killed processes.
    let leftovers: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("tests-") && n.ends_with(".csv"))
        })
        .collect();
    assert!(leftovers.is_empty(), "scratch files leaked: {leftovers:?}");

    // Faults cost at most their kill deadline plus bounded retries — the
    // batch never inherits a hang.
    assert!(wall < Duration::from_secs(60), "chaos batch took {wall:?}");

    std::fs::remove_dir_all(&dir).unwrap();
}
