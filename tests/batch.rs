//! Batch-vs-serial equivalence over the full Table 1 benchmark suite.
//!
//! Acceptance criteria of the batch/caching work: a `BatchRunner` pass
//! over all ten benchmark models must produce exactly the output digests
//! a one-at-a-time serial loop produces, and a shared `BuildCache` must
//! let the batch reuse every executable the serial pass compiled.

use accmos::{AccMoS, BatchJob, BatchRunner, BuildCache, RunOptions};
use accmos_ir::TestVectors;
use accmos_models::TABLE1;
use accmos_testgen::random_tests;

const STEPS: u64 = 500;
const SEED: u64 = 0xACC5;

fn stimulus(model: &accmos_ir::Model) -> TestVectors {
    let pre = accmos::preprocess(model).expect("benchmark preprocesses");
    random_tests(&pre, 32, SEED)
}

#[test]
fn batch_over_table1_matches_serial_digests() {
    let cache_root = std::env::temp_dir()
        .join(format!("accmos-table1-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_root);
    let cache = BuildCache::at(&cache_root);
    let pipeline = AccMoS::new().with_cache(cache.clone());

    // Serial reference: every model compiled and run one at a time.
    let mut serial = Vec::new();
    for (name, _, _) in TABLE1 {
        let model = accmos_models::by_name(name);
        let tests = stimulus(&model);
        let sim = pipeline.prepare(&model).expect("serial compile");
        assert!(!sim.cache_hit(), "{name}: first build must be cold");
        let report = sim.run(STEPS, &tests, &RunOptions::default()).expect("serial run");
        sim.clean();
        serial.push((name, report.output_digest));
    }

    // Batched: identical jobs through the worker pool; the shared cache
    // must satisfy every compile without invoking GCC again.
    let jobs: Vec<BatchJob> = TABLE1
        .iter()
        .map(|(name, _, _)| {
            let model = accmos_models::by_name(name);
            let tests = stimulus(&model);
            BatchJob::model(*name, model, tests, STEPS)
        })
        .collect();
    let report = BatchRunner::new(pipeline).with_workers(4).run(jobs).expect("batch runs");

    assert_eq!(report.summary.jobs, TABLE1.len());
    assert_eq!(report.summary.unique_programs, TABLE1.len());
    assert_eq!(report.summary.failures, 0);
    assert_eq!(
        report.summary.cached_compiles,
        TABLE1.len(),
        "every batch compile should hit the serial pass's cache"
    );
    assert_eq!(report.summary.cold_compiles, 0);

    for (job, (name, digest)) in report.jobs.iter().zip(&serial) {
        assert_eq!(job.label, *name, "submission order preserved");
        let batched = job.report.as_ref().expect("job succeeded");
        assert_eq!(
            batched.output_digest, *digest,
            "{name}: batched digest diverged from serial"
        );
    }

    cache.clear().expect("cache cleanup");
}
