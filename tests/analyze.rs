//! Static-analysis integration: the interval fixpoint converges on every
//! Table 1 benchmark, and instrumentation pruning is *observationally
//! free* — a pruned build and an unpruned build of the same model agree
//! bit-for-bit on digests, outputs, diagnostics and coverage counts for
//! any stimulus, because only checks with a proof of impossibility are
//! dropped.

use accmos::{AccMoS, CodegenOptions, RunOptions};
use accmos_ir::CoverageKind;
use accmos_testgen::random_tests;

#[test]
fn fixpoint_converges_on_every_benchmark() {
    for (name, _, _) in accmos_models::TABLE1 {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();
        let analysis = accmos::analyze(&pre);
        assert!(
            analysis.converged(),
            "{name}: interval fixpoint did not converge in {} pass(es)",
            analysis.iterations()
        );
    }
}

/// The acceptance sweep: across all ten benchmarks and several stimulus
/// seeds, the `prune_proven_safe` build must be indistinguishable from
/// the full-instrumentation build — and at least one benchmark must
/// actually drop a diagnosis site, or the whole feature is vacuous.
#[test]
fn pruned_and_unpruned_builds_agree_bit_for_bit() {
    let unpruned_opts =
        CodegenOptions { prune_proven_safe: false, ..CodegenOptions::accmos() };
    let mut pruned_total = 0usize;
    for (name, _, _) in accmos_models::TABLE1 {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();

        let pruned_sim = AccMoS::new().prepare(&model).unwrap();
        let unpruned_sim =
            AccMoS::new().with_codegen(unpruned_opts.clone()).prepare(&model).unwrap();
        assert_eq!(
            unpruned_sim.program().pruned_sites,
            0,
            "{name}: pruning disabled must emit every applicable check"
        );
        assert!(
            pruned_sim.program().diag_sites.len() + pruned_sim.program().pruned_sites
                == unpruned_sim.program().diag_sites.len(),
            "{name}: pruned + kept sites must account for the full plan"
        );
        pruned_total += pruned_sim.program().pruned_sites;

        for seed in [1u64, 0xACC, 998_877] {
            let tests = random_tests(&pre, 32, seed);
            let a = pruned_sim.run(150, &tests, &RunOptions::default()).unwrap();
            let b = unpruned_sim.run(150, &tests, &RunOptions::default()).unwrap();
            assert_eq!(a.output_digest, b.output_digest, "{name} seed {seed}: digest");
            assert_eq!(a.final_outputs, b.final_outputs, "{name} seed {seed}: outputs");
            assert_eq!(a.diagnostics, b.diagnostics, "{name} seed {seed}: diagnostics");
            let (ca, cb) = (a.coverage.unwrap(), b.coverage.unwrap());
            for kind in CoverageKind::ALL {
                assert_eq!(ca.counts(kind), cb.counts(kind), "{name} seed {seed}: {kind}");
                // Unsatisfiable points are a pruned-build side channel;
                // they must never exceed the uncovered remainder.
                assert!(
                    ca.unsatisfiable(kind) <= ca.counts(kind).total - ca.counts(kind).covered,
                    "{name} seed {seed}: {kind} unsat over-claims"
                );
                assert!(
                    ca.reachable_percent(kind) >= ca.percent(kind) - 1e-9,
                    "{name} seed {seed}: {kind} reachable percent regressed"
                );
            }
        }
        pruned_sim.clean();
        unpruned_sim.clean();
    }
    assert!(
        pruned_total >= 1,
        "no benchmark dropped a single diagnosis site; pruning is vacuous"
    );
}

/// The analyzer itself never flags a benchmark at error severity — the
/// CI gate (`accmos analyze --deny error`) relies on this staying true.
#[test]
fn benchmarks_are_free_of_error_findings() {
    use accmos::Severity;
    for (name, _, _) in accmos_models::TABLE1 {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();
        let analysis = accmos::analyze(&pre);
        assert!(
            analysis.max_severity().is_none_or(|s| s < Severity::Error),
            "{name}: error-severity findings: {:?}",
            analysis.findings()
        );
    }
}
