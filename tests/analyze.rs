//! Static-analysis integration: the interval fixpoint converges on every
//! Table 1 benchmark, and instrumentation pruning is *observationally
//! free* — a pruned build and an unpruned build of the same model agree
//! bit-for-bit on digests, outputs, diagnostics and coverage counts for
//! any stimulus, because only checks with a proof of impossibility are
//! dropped.

use accmos::{AccMoS, CodegenOptions, RunOptions};
use accmos_ir::CoverageKind;
use accmos_testgen::random_tests;

#[test]
fn fixpoint_converges_on_every_benchmark() {
    for (name, _, _) in accmos_models::TABLE1 {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();
        let analysis = accmos::analyze(&pre);
        assert!(
            analysis.converged(),
            "{name}: interval fixpoint did not converge in {} pass(es)",
            analysis.iterations()
        );
    }
}

/// The acceptance sweep: across all ten benchmarks and several stimulus
/// seeds, the `prune_proven_safe` build must be indistinguishable from
/// the full-instrumentation build — and at least one benchmark must
/// actually drop a diagnosis site, or the whole feature is vacuous.
#[test]
fn pruned_and_unpruned_builds_agree_bit_for_bit() {
    let unpruned_opts =
        CodegenOptions { prune_proven_safe: false, ..CodegenOptions::accmos() };
    let mut pruned_total = 0usize;
    for (name, _, _) in accmos_models::TABLE1 {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();

        let pruned_sim = AccMoS::new().prepare(&model).unwrap();
        let unpruned_sim =
            AccMoS::new().with_codegen(unpruned_opts.clone()).prepare(&model).unwrap();
        assert_eq!(
            unpruned_sim.program().pruned_sites,
            0,
            "{name}: pruning disabled must emit every applicable check"
        );
        assert!(
            pruned_sim.program().diag_sites.len() + pruned_sim.program().pruned_sites
                == unpruned_sim.program().diag_sites.len(),
            "{name}: pruned + kept sites must account for the full plan"
        );
        pruned_total += pruned_sim.program().pruned_sites;

        for seed in [1u64, 0xACC, 998_877] {
            let tests = random_tests(&pre, 32, seed);
            let a = pruned_sim.run(150, &tests, &RunOptions::default()).unwrap();
            let b = unpruned_sim.run(150, &tests, &RunOptions::default()).unwrap();
            assert_eq!(a.output_digest, b.output_digest, "{name} seed {seed}: digest");
            assert_eq!(a.final_outputs, b.final_outputs, "{name} seed {seed}: outputs");
            assert_eq!(a.diagnostics, b.diagnostics, "{name} seed {seed}: diagnostics");
            let (ca, cb) = (a.coverage.unwrap(), b.coverage.unwrap());
            for kind in CoverageKind::ALL {
                assert_eq!(ca.counts(kind), cb.counts(kind), "{name} seed {seed}: {kind}");
                // Unsatisfiable points are a pruned-build side channel;
                // they must never exceed the uncovered remainder.
                assert!(
                    ca.unsatisfiable(kind) <= ca.counts(kind).total - ca.counts(kind).covered,
                    "{name} seed {seed}: {kind} unsat over-claims"
                );
                assert!(
                    ca.reachable_percent(kind) >= ca.percent(kind) - 1e-9,
                    "{name} seed {seed}: {kind} reachable percent regressed"
                );
            }
        }
        pruned_sim.clean();
        unpruned_sim.clean();
    }
    assert!(
        pruned_total >= 1,
        "no benchmark dropped a single diagnosis site; pruning is vacuous"
    );
}

/// The specialization acceptance sweep: analyzer-directed specialization
/// (constant folding, dead-path elision, arm/guard specialization,
/// semantic lane fusion) must be observationally free. Across all ten
/// benchmarks, three stimulus seeds and lane widths {1, 4}, the
/// specialized (default) build must agree bit-for-bit with the
/// specialization-off build — digests, outputs, diagnostics, coverage
/// counts and per-lane digests. And at least one benchmark must actually
/// fold or specialize something, or the layer is vacuous. (Corpus replay
/// in `tests/corpus.rs` exercises the same default-on configuration over
/// every checked-in fuzz repro.)
#[test]
fn specialized_and_unspecialized_builds_agree_bit_for_bit() {
    let mut specialized_total = 0usize;
    for (name, _, _) in accmos_models::TABLE1 {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();
        for lanes in [1usize, 4] {
            let spec_sim = AccMoS::new().with_lanes(lanes).prepare(&model).unwrap();
            let nospec_opts = CodegenOptions::accmos().lanes(lanes).without_specialization();
            let nospec_sim =
                AccMoS::new().with_codegen(nospec_opts).prepare(&model).unwrap();
            let off = nospec_sim.program();
            assert_eq!(
                (off.folded_actors, off.elided_actors, off.specialized_arms),
                (0, 0, 0),
                "{name} lanes {lanes}: specialization off must emit everything"
            );
            let on = spec_sim.program();
            specialized_total += on.folded_actors + on.elided_actors + on.specialized_arms;

            for seed in [1u64, 0xACC, 998_877] {
                let tests = random_tests(&pre, 32, seed);
                let opts = RunOptions {
                    lane_tests: (1..lanes as u64)
                        .map(|l| random_tests(&pre, 32, seed.wrapping_add(l)))
                        .collect(),
                    ..RunOptions::default()
                };
                let a = spec_sim.run(150, &tests, &opts).unwrap();
                let b = nospec_sim.run(150, &tests, &opts).unwrap();
                assert_eq!(
                    a.output_digest, b.output_digest,
                    "{name} lanes {lanes} seed {seed}: digest"
                );
                assert_eq!(
                    a.final_outputs, b.final_outputs,
                    "{name} lanes {lanes} seed {seed}: outputs"
                );
                assert_eq!(
                    a.diagnostics, b.diagnostics,
                    "{name} lanes {lanes} seed {seed}: diagnostics"
                );
                for (lane, (la, lb)) in
                    a.lane_reports.iter().zip(&b.lane_reports).enumerate()
                {
                    assert_eq!(
                        la.output_digest, lb.output_digest,
                        "{name} lanes {lanes} seed {seed}: lane {lane} digest"
                    );
                }
                let (ca, cb) = (a.coverage.unwrap(), b.coverage.unwrap());
                for kind in CoverageKind::ALL {
                    assert_eq!(
                        ca.counts(kind),
                        cb.counts(kind),
                        "{name} lanes {lanes} seed {seed}: {kind}"
                    );
                }
            }
            spec_sim.clean();
            nospec_sim.clean();
        }
    }
    assert!(
        specialized_total >= 1,
        "no benchmark folded, elided or specialized a single site; \
         the specialization layer is vacuous"
    );
}

/// The analyzer itself never flags a benchmark at error severity — the
/// CI gate (`accmos analyze --deny error`) relies on this staying true.
#[test]
fn benchmarks_are_free_of_error_findings() {
    use accmos::Severity;
    for (name, _, _) in accmos_models::TABLE1 {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();
        let analysis = accmos::analyze(&pre);
        assert!(
            analysis.max_severity().is_none_or(|s| s < Severity::Error),
            "{name}: error-severity findings: {:?}",
            analysis.findings()
        );
    }
}
