//! End-to-end checks on the Table 1 benchmark suite: every model compiles
//! through the AccMoS pipeline, runs, and agrees with the interpretive
//! reference engine.

use accmos::{AccMoS, Engine as _, NormalEngine, RunOptions, SimOptions};
use accmos_ir::{CoverageKind, DiagnosticKind};
use accmos_testgen::random_tests;

/// Interpreter and generated C agree on digests, coverage and diagnostics
/// for real benchmark models (which include f64-parameterised actors:
/// saturations, rate limiters, sine/ramp sources).
#[test]
fn benchmarks_match_reference_engine() {
    for name in ["CSEV", "SPV", "TWC", "LEDLC"] {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();
        let tests = random_tests(&pre, 32, 0xACC);

        let steps = 200;
        let interp = NormalEngine::new().run(&pre, &tests, &SimOptions::steps(steps));
        let sim = AccMoS::new().prepare(&model).unwrap();
        let compiled = sim.run(steps, &tests, &RunOptions::default()).unwrap();
        sim.clean();

        assert_eq!(interp.output_digest, compiled.output_digest, "{name}: digest");
        assert_eq!(interp.final_outputs, compiled.final_outputs, "{name}: outputs");
        let (ic, cc) = (interp.coverage.unwrap(), compiled.coverage.unwrap());
        for kind in CoverageKind::ALL {
            assert_eq!(ic.counts(kind), cc.counts(kind), "{name}: {kind}");
        }
        assert_eq!(interp.diagnostics, compiled.diagnostics, "{name}: diagnostics");
    }
}

/// The big models (LANS 570 actors, RAC 667 actors) at least compile and
/// run end to end with plausible coverage.
#[test]
fn large_benchmarks_compile_and_run() {
    for name in ["LANS", "RAC", "CPUT", "FMTM", "TCP", "UTPC"] {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();
        let tests = random_tests(&pre, 32, 7);
        let sim = AccMoS::new()
            .prepare(&model)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let r = sim.run(100, &tests, &RunOptions::default()).unwrap();
        sim.clean();
        assert_eq!(r.steps, 100, "{name}");
        let cov = r.coverage.unwrap();
        let actor_pct = cov.percent(CoverageKind::Actor);
        assert!(
            actor_pct > 20.0 && actor_pct <= 100.0,
            "{name}: implausible actor coverage {actor_pct}"
        );
    }
}

/// The CSEV fault variants reproduce the paper's case study qualitatively:
/// the quantity fault takes many steps to surface (long-run wrap), the
/// power fault fires immediately (static downcast).
#[test]
fn csev_case_study_faults_detected() {
    use accmos_models::{csev_variant, CsevFault};

    // Fault 1: wrap on overflow in the quantity accumulator.
    let model = csev_variant(CsevFault::Quantity);
    let pre = accmos::preprocess(&model).unwrap();
    let tests = accmos_testgen::random_tests(&pre, 64, 1);
    let sim = AccMoS::new().prepare(&model).unwrap();
    let r = sim
        .run(3_000_000, &tests, &RunOptions { stop_on_diagnostic: true, ..Default::default() })
        .unwrap();
    sim.clean();
    assert!(r.has_diagnostic(DiagnosticKind::WrapOnOverflow), "{r}");

    // Fault 2: downcast on the int16 power path, detected at the first
    // execution of the faulty actor.
    let model = csev_variant(CsevFault::Power);
    let pre = accmos::preprocess(&model).unwrap();
    let tests = accmos_testgen::random_tests(&pre, 64, 1);
    let sim = AccMoS::new().prepare(&model).unwrap();
    let r = sim
        .run(100_000, &tests, &RunOptions { stop_on_diagnostic: true, ..Default::default() })
        .unwrap();
    sim.clean();
    let down = r.first_diagnostic(DiagnosticKind::Downcast).expect("downcast detected");
    assert!(down.first_step < 100, "downcast should fire near step 0, got {}", down.first_step);
}
