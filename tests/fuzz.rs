//! Campaign-level tests of the differential fuzz subsystem: fault
//! injection stays classified, planted divergences are detected /
//! minimized / corpus-ized / replayed, and a killed campaign resumes
//! from its torn `fuzz.jsonl` without re-running or duplicating trials.

use accmos::fuzz::{plan_trial, replay_corpus_entry, FuzzStore};
use accmos::{FuzzCampaign, FuzzConfig};
use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("accmos-fuzz-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Small fast campaign defaults shared by the tests: short models, no
/// rustc comparisons, no minimizer unless the test wants it.
fn base_config(seed: u64, trials: u64, state_dir: PathBuf) -> FuzzConfig {
    FuzzConfig {
        seed,
        trials,
        steps: 24,
        rows: 4,
        state_dir: Some(state_dir),
        rust_every: 0,
        minimize: false,
        ..FuzzConfig::default()
    }
}

/// The acceptance property, scaled to test time: a campaign with
/// faultsim-injected crash and hang trials mixed in completes with zero
/// unclassified failures — every injected fault comes back as a
/// classified verdict (crash, timeout, or quarantined once the crash
/// binary trips the quarantine threshold), and every real trial is
/// differentially clean.
#[test]
fn campaign_with_injected_faults_stays_classified() {
    let dir = scratch("inject");
    let config = FuzzConfig {
        inject_fault_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_faultsim"))),
        trial_budget: Duration::from_millis(400),
        ..base_config(11, 30, dir.clone())
    };
    // Injection schedule: indices 3,13,23 hang; 7,17,27 crash.
    let injected_planned =
        (0..30).filter(|i| plan_trial(&config, *i).inject.is_some()).count() as u64;
    assert_eq!(injected_planned, 6, "expected 6 injected trials in 30");

    let summary = FuzzCampaign::new(config).run().unwrap();
    assert_eq!(summary.executed, 30);
    assert_eq!(summary.unclassified, 0, "every fault must classify");
    assert_eq!(summary.injected, 6, "all injected trials classified");
    assert_eq!(summary.divergences, 0, "real trials differentially clean");
    assert_eq!(summary.ok + summary.failures + summary.injected, 30);

    // The store agrees with the in-memory summary.
    let view = FuzzStore::in_dir(&dir).read();
    assert_eq!(view.records.len(), 30);
    assert!(view.records.iter().all(|r| r.classified));
    let injected_kinds: Vec<&str> = view
        .records
        .iter()
        .filter(|r| r.injected)
        .map(|r| r.verdict.as_str())
        .collect();
    assert_eq!(injected_kinds.len(), 6);
    assert!(
        injected_kinds.iter().all(|v| v.starts_with("injected:")),
        "injected verdicts carry their failure kind: {injected_kinds:?}"
    );
    assert!(
        injected_kinds.iter().any(|v| *v == "injected:timeout"),
        "hang trials classify as timeouts: {injected_kinds:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The detector proves itself end-to-end: a sabotaged generated-C build
/// (test-only extra digest fold) must be caught as a divergence,
/// delta-debugged down to a tiny model, written to the corpus, and the
/// written repro must replay clean against a *normal* build — the
/// pinned digest is the interpreter's, so a fixed backend passes.
#[test]
fn sabotage_is_detected_minimized_and_replayable() {
    let dir = scratch("sabotage");
    let corpus = scratch("sabotage-corpus");
    let config = FuzzConfig {
        sabotage: true,
        minimize: true,
        corpus_dir: Some(corpus.clone()),
        ..base_config(21, 1, dir.clone())
    };
    let summary = FuzzCampaign::new(config).run().unwrap();
    assert_eq!(summary.divergences, 1, "the planted divergence must be detected");
    assert_eq!(summary.unclassified, 0);
    assert_eq!(summary.minimized.len(), 1);

    let repro = &summary.minimized[0];
    assert!(
        repro.actors <= 8,
        "delta-debugging must shrink the repro to <= 8 actors, got {}",
        repro.actors
    );
    assert!(repro.mdlx_path.exists(), "repro written to the corpus");
    assert!(repro.mdlx_path.with_extension("expected").exists());
    assert!(repro.detail.contains("digest"), "divergence detail names the field");

    // Replay with the sabotage flag off: interpreter and (healthy)
    // compiled simulator both match the pinned reference digest.
    replay_corpus_entry(&repro.mdlx_path)
        .unwrap_or_else(|e| panic!("minimized repro must replay clean: {e}"));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&corpus);
}

/// Crash-resume (faultsim-style, in process): a campaign that dies
/// mid-run — simulated by the test-only abort injection — leaves a
/// valid store behind; even after its tail is torn by a half-written
/// record, `resume` skips exactly the completed trials, bounded slices
/// (`max_trials_per_run`) make progress, and the campaign converges to
/// the planned trial count with no duplicate indices.
#[test]
fn killed_campaign_resumes_from_torn_store_and_converges() {
    let dir = scratch("resume");
    let config = base_config(31, 10, dir.clone());

    // First run dies after 4 trials.
    let aborting = FuzzConfig { abort_after_trials: Some(4), ..config.clone() };
    let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        FuzzCampaign::new(aborting).run()
    }));
    assert!(crash.is_err(), "abort injection must panic mid-campaign");
    let store = FuzzStore::in_dir(&dir);
    let after_crash = store.read().records.len();
    assert!(after_crash >= 3, "the crashed run persisted its completed trials");
    assert!(after_crash < 10, "the crashed run did not finish");

    // A writer also died mid-append: tear the tail.
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new().append(true).open(store.path()).unwrap();
    f.write_all(b"{\"schema\":1,\"campaign\":31,\"index\":9999,\"verd").unwrap();
    drop(f);
    assert!(store.read().truncated_tail, "the tear is visible");

    // Resume in bounded slices until no work remains.
    let mut total_executed = 0;
    for _ in 0..10 {
        let slice = FuzzConfig {
            resume: true,
            max_trials_per_run: Some(3),
            ..config.clone()
        };
        let summary = FuzzCampaign::new(slice).run().unwrap();
        total_executed += summary.executed;
        assert!(summary.executed <= 3, "slice bound respected");
        assert_eq!(summary.unclassified, 0);
        if summary.executed == 0 {
            break;
        }
    }
    assert_eq!(total_executed + after_crash as u64, 10, "converged to the planned total");

    let indices: Vec<u64> = store.completed_indices(31).into_iter().collect();
    let distinct: HashSet<u64> = indices.iter().copied().collect();
    assert_eq!(distinct, (0..10).collect::<HashSet<u64>>(), "every trial ran");
    assert_eq!(store.read().records.iter().filter(|r| r.campaign == 31).count(), 10,
        "no trial ran twice");

    // One more resumed run is a no-op.
    let summary = FuzzCampaign::new(FuzzConfig { resume: true, ..config }).run().unwrap();
    assert_eq!(summary.executed, 0);
    assert_eq!(summary.resumed, 10);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The MDLX parser under garbled bytes: seeded mutations (truncations,
/// byte flips, splices, deletions) of valid model files must come back
/// as `Err`, never a panic or a hang. This is the parse-hardening
/// smoke test — any panic aborts the test process and fails the suite.
#[test]
fn parser_survives_garbled_bytes() {
    use accmos_testgen::TestRng;
    let mut parsed_ok = 0usize;
    let mut rejected = 0usize;
    for seed in [2u64, 5, 9] {
        let model = accmos::fuzz::planned_model(seed).unwrap();
        let text = accmos::write_mdlx(&model);
        let bytes = text.as_bytes();
        let mut rng = TestRng::seed_from_u64(seed.wrapping_mul(0x51ED));
        for round in 0..80 {
            let mut mutant = bytes.to_vec();
            match round % 4 {
                // Truncate at a random point (torn file).
                0 => mutant.truncate(rng.gen_range(0..mutant.len() as i128) as usize),
                // Flip a handful of random bytes.
                1 => {
                    for _ in 0..rng.gen_range(1..=8i128) {
                        let i = rng.gen_range(0..mutant.len() as i128) as usize;
                        mutant[i] = rng.gen_range(0..=255i128) as u8;
                    }
                }
                // Splice random ASCII garbage into the middle.
                2 => {
                    let at = rng.gen_range(0..mutant.len() as i128) as usize;
                    let garbage: Vec<u8> = (0..rng.gen_range(1..=32i128))
                        .map(|_| rng.gen_range(0x20..=0x7Ei128) as u8)
                        .collect();
                    mutant.splice(at..at, garbage);
                }
                // Delete a random span.
                _ => {
                    let a = rng.gen_range(0..mutant.len() as i128) as usize;
                    let b = (a + rng.gen_range(1..=64i128) as usize).min(mutant.len());
                    mutant.drain(a..b);
                }
            }
            let mutant_text = String::from_utf8_lossy(&mutant);
            match accmos::parse_mdlx(&mutant_text) {
                // A mutant that still parses must also still preprocess
                // or fail cleanly — no panics anywhere downstream.
                Ok(model) => {
                    let _ = accmos::preprocess(&model);
                    parsed_ok += 1;
                }
                Err(_) => rejected += 1,
            }
        }
    }
    assert!(rejected > 0, "mutations must actually corrupt some files");
    // Not asserting parsed_ok > 0: surviving a mutation is possible
    // (e.g. a flipped byte inside a name) but not guaranteed.
    let _ = parsed_ok;
}
