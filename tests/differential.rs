//! Differential testing: the interpretive reference engine and the
//! generated C simulator must produce bit-identical results on integer
//! models — output digests, final outputs, all four coverage metrics and
//! every diagnostic event.
//!
//! This is the strongest correctness argument the reproduction has: two
//! independent implementations of the actor semantics (one in Rust, one
//! emitted as C and compiled by GCC) are driven with boundary-biased
//! random models and stimuli and compared exactly.

use accmos::{AccMoS, NormalEngine, RunOptions, SimOptions};
use accmos::Engine as _;
use accmos_ir::CoverageKind;
use accmos_testgen::{random_tests, ModelGenConfig, RandomModelGen};

fn check_seed(seed: u64, actors: usize, steps: u64) {
    let model = RandomModelGen::new(ModelGenConfig {
        seed,
        actors,
        ..ModelGenConfig::default()
    })
    .generate();
    let pre = accmos::preprocess(&model).unwrap();
    let tests = random_tests(&pre, 16, seed.wrapping_mul(7919));

    let interp = NormalEngine::new().run(&pre, &tests, &SimOptions::steps(steps));

    let sim = AccMoS::new().prepare(&model).unwrap_or_else(|e| {
        let program = AccMoS::new().generate(&model).unwrap();
        panic!("seed {seed}: compile failed: {e}\n{}", program.main_c);
    });
    let compiled = sim.run(steps, &tests, &RunOptions::default()).unwrap();
    sim.clean();

    assert_eq!(
        interp.output_digest, compiled.output_digest,
        "seed {seed}: digest mismatch\ninterp: {interp}\ncompiled: {compiled}\n--- generated C ---\n{}",
        sim.program().main_c
    );
    assert_eq!(interp.final_outputs, compiled.final_outputs, "seed {seed}: final outputs");
    assert_eq!(interp.steps, compiled.steps, "seed {seed}: step counts");

    let icov = interp.coverage.expect("interp coverage");
    let ccov = compiled.coverage.expect("compiled coverage");
    for kind in CoverageKind::ALL {
        assert_eq!(
            icov.counts(kind),
            ccov.counts(kind),
            "seed {seed}: {kind} coverage mismatch"
        );
    }

    assert_eq!(
        interp.diagnostics, compiled.diagnostics,
        "seed {seed}: diagnostics mismatch"
    );
}

#[test]
fn random_integer_models_match_bit_for_bit() {
    for seed in 0..12 {
        check_seed(seed, 28, 64);
    }
}

#[test]
fn larger_random_models_match() {
    for seed in 100..104 {
        check_seed(seed, 80, 48);
    }
}

#[test]
fn long_runs_accumulate_identically() {
    // Longer horizons let integrators wrap and delays cycle many times.
    for seed in 200..203 {
        check_seed(seed, 24, 2000);
    }
}

fn check_config(cfg: ModelGenConfig, steps: u64) {
    let seed = cfg.seed;
    let model = RandomModelGen::new(cfg).generate();
    let pre = accmos::preprocess(&model).unwrap();
    let tests = random_tests(&pre, 16, seed.wrapping_mul(31));

    let interp = NormalEngine::new().run(&pre, &tests, &SimOptions::steps(steps));
    let sim = AccMoS::new().prepare(&model).unwrap_or_else(|e| {
        let program = AccMoS::new().generate(&model).unwrap();
        panic!("seed {seed}: compile failed: {e}\n{}", program.main_c);
    });
    let compiled = sim.run(steps, &tests, &RunOptions::default()).unwrap();
    sim.clean();

    assert_eq!(
        interp.output_digest, compiled.output_digest,
        "seed {seed}: digest mismatch\ninterp: {interp}\ncompiled: {compiled}\n--- generated C ---\n{}",
        sim.program().main_c
    );
    assert_eq!(interp.diagnostics, compiled.diagnostics, "seed {seed}: diagnostics");
    let (icov, ccov) = (interp.coverage.unwrap(), compiled.coverage.unwrap());
    for kind in CoverageKind::ALL {
        assert_eq!(icov.counts(kind), ccov.counts(kind), "seed {seed}: {kind}");
    }
}

/// Float math evaluates through the same glibc libm in both paths, so
/// even transcendental pipelines must digest identically.
#[test]
fn float_models_match_bit_for_bit() {
    for seed in 300..308 {
        check_config(
            ModelGenConfig { seed, actors: 30, float_math: true, ..ModelGenConfig::default() },
            64,
        );
    }
}

/// Vector signals: mux/demux/selector/dot-product and element-wise loops.
#[test]
fn vector_models_match_bit_for_bit() {
    for seed in 400..408 {
        check_config(
            ModelGenConfig { seed, actors: 32, vectors: true, ..ModelGenConfig::default() },
            64,
        );
    }
}

/// Everything at once.
#[test]
fn mixed_models_match_bit_for_bit() {
    for seed in 500..506 {
        check_config(
            ModelGenConfig {
                seed,
                actors: 48,
                float_math: true,
                vectors: true,
                inports: 3,
                ..ModelGenConfig::default()
            },
            128,
        );
    }
}

/// Conditional groups: Enabled/Triggered subsystems with held state and
/// randomly-typed control signals — the gating and edge-detection
/// semantics must agree between the interpreter and the generated C.
#[test]
fn conditional_group_models_match_bit_for_bit() {
    for seed in 600..608 {
        check_config(
            ModelGenConfig { seed, actors: 32, conditional: true, ..ModelGenConfig::default() },
            96,
        );
    }
}

/// Nested conditional groups chain parent gating; a child may only run
/// while every ancestor is active.
#[test]
fn nested_group_models_match_bit_for_bit() {
    for seed in 700..708 {
        check_config(
            ModelGenConfig {
                seed,
                actors: 40,
                conditional: true,
                nested: true,
                inports: 3,
                ..ModelGenConfig::default()
            },
            96,
        );
    }
}
