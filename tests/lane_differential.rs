//! Lane-parallel differential testing: a lane-N simulator evaluating N
//! test vectors in one process must be bit-identical, lane for lane, to
//! N independent scalar runs of the same compiled model — per-lane
//! output digests and diagnostics, the FNV fold that forms the
//! aggregate digest, and the OR-reduced coverage union.
//!
//! The scalar simulator is the ground truth here (it is itself checked
//! against the interpretive engine in `differential.rs` and
//! `benchmarks_e2e.rs`), so any divergence pins the blame on the lane
//! codegen path: the structure-of-arrays state layout, the per-lane
//! stimulus plumbing, or the lane-blocked driver loop.

use accmos::{AccMoS, NormalEngine, RunOptions, SimOptions};
use accmos_ir::{CoverageKind, OutputDigest, TestVectors};
use accmos_testgen::random_tests;

/// Distinct full-range random stimuli, one table per lane.
fn lane_stimuli(
    pre: &accmos::PreprocessedModel,
    lanes: usize,
    seed: u64,
) -> Vec<TestVectors> {
    (0..lanes as u64)
        .map(|lane| random_tests(pre, 16, seed.wrapping_add(lane)))
        .collect()
}

/// Run the lane-`lanes` build once per seed and the scalar build `lanes`
/// times on the same stimuli; assert lane-for-lane equality.
fn check_model(name: &str, seeds: &[u64], widths: &[usize], steps: u64) {
    let model = accmos_models::by_name(name);
    let pre = accmos::preprocess(&model).unwrap();
    let scalar = AccMoS::new().prepare(&model).unwrap();

    for &lanes in widths {
        let lane_sim = AccMoS::new().with_lanes(lanes).prepare(&model).unwrap();
        for &seed in seeds {
            let stimuli = lane_stimuli(&pre, lanes, seed);
            let opts = RunOptions {
                lane_tests: stimuli[1..].to_vec(),
                ..RunOptions::default()
            };
            let fused = lane_sim.run(steps, &stimuli[0], &opts).unwrap();
            assert_eq!(fused.lane_width(), lanes as u64, "{name}: lane width");

            let mut fold = OutputDigest::new();
            for (lane, tests) in stimuli.iter().enumerate() {
                let solo = scalar.run(steps, tests, &RunOptions::default()).unwrap();
                let ctx = format!("{name} seed {seed} lanes {lanes} lane {lane}");
                let in_lane = &fused.lane_reports[lane];
                assert_eq!(in_lane.output_digest, solo.output_digest, "{ctx}: digest");
                assert_eq!(in_lane.diagnostics, solo.diagnostics, "{ctx}: diagnostics");
                assert_eq!(in_lane.final_outputs, solo.final_outputs, "{ctx}: outputs");
                fold.write_u64(solo.output_digest);

                // The shared coverage bitmap is an OR across lanes, so it
                // dominates every individual run without exceeding the
                // instrumented total.
                let fcov = fused.coverage.as_ref().unwrap();
                let scov = solo.coverage.as_ref().unwrap();
                for kind in CoverageKind::ALL {
                    let (f, s) = (fcov.counts(kind), scov.counts(kind));
                    assert_eq!(f.total, s.total, "{ctx}: {kind} instrumented points");
                    assert!(
                        f.covered >= s.covered,
                        "{ctx}: {kind} union {} lost points vs scalar {}",
                        f.covered,
                        s.covered
                    );
                }
            }
            assert_eq!(
                fused.output_digest,
                fold.finish(),
                "{name} seed {seed} lanes {lanes}: aggregate digest is not the \
                 FNV fold of the per-lane digests"
            );
        }
        lane_sim.clean();
    }
    scalar.clean();
}

// The full Table 1 suite, two seeds, every lane width {2, 4, 8} — split
// into three tests so the per-model compiles spread across test threads.

/// The reference-engine-verified models.
#[test]
fn reference_models_lane_runs_match_scalar_runs() {
    for name in ["CSEV", "SPV", "TWC", "LEDLC"] {
        check_model(name, &[0xACC, 0x5EED], &[2, 4, 8], 64);
    }
}

/// The mid-size controllers and protocol models.
#[test]
fn mid_models_lane_runs_match_scalar_runs() {
    for name in ["CPUT", "FMTM", "TCP", "UTPC"] {
        check_model(name, &[0xACC, 0x5EED], &[2, 4, 8], 64);
    }
}

/// The big models (LANS 570 actors, RAC 667 actors) exercise wide state
/// structs and long schedules; shorter horizons keep the run cost in
/// bounds, the compile cost is cached after the first CI pass.
#[test]
fn large_models_lane_runs_match_scalar_runs() {
    for name in ["LANS", "RAC"] {
        check_model(name, &[7, 0xACC], &[2, 4, 8], 48);
    }
}

/// The OR-reduced coverage of a lane run equals the exact union of the
/// per-lane bitmaps, computed independently with the interpretive
/// engine. Counts alone cannot express a union, so this is the check
/// that the lanes share one bitmap rather than overwriting each other.
#[test]
fn lane_coverage_is_exact_bitmap_union() {
    for name in ["CSEV", "SPV"] {
        let model = accmos_models::by_name(name);
        let pre = accmos::preprocess(&model).unwrap();
        let lanes = 4;
        let stimuli = lane_stimuli(&pre, lanes, 0xACC);
        let steps = 64;

        let mut union: Option<accmos_ir::CoverageBitmaps> = None;
        for tests in &stimuli {
            let (_, bm) =
                NormalEngine::new().run_with_bitmaps(&pre, tests, &SimOptions::steps(steps));
            match &mut union {
                Some(u) => u.merge(&bm),
                None => union = Some(bm),
            }
        }
        let union = union.unwrap();

        let lane_sim = AccMoS::new().with_lanes(lanes).prepare(&model).unwrap();
        let opts = RunOptions {
            lane_tests: stimuli[1..].to_vec(),
            ..RunOptions::default()
        };
        let fused = lane_sim.run(steps, &stimuli[0], &opts).unwrap();
        lane_sim.clean();

        let fcov = fused.coverage.as_ref().unwrap();
        for kind in CoverageKind::ALL {
            assert_eq!(
                fcov.counts(kind).covered,
                union.bitmap(kind).count_ones(),
                "{name}: {kind} union"
            );
        }
    }
}

/// A lane run must present exactly `lanes - 1` extra stimulus tables;
/// anything else is rejected before the simulator is even spawned.
#[test]
fn lane_stimulus_count_is_validated() {
    let model = accmos_models::by_name("SPV");
    let pre = accmos::preprocess(&model).unwrap();
    let tests = random_tests(&pre, 8, 1);

    let lane_sim = AccMoS::new().with_lanes(4).prepare(&model).unwrap();
    // Too few lane tables.
    let short = RunOptions { lane_tests: vec![tests.clone()], ..RunOptions::default() };
    assert!(lane_sim.run(16, &tests, &short).is_err(), "1 extra table for 4 lanes");
    // Scalar build refuses lane stimuli.
    let scalar = AccMoS::new().prepare(&model).unwrap();
    let extra = RunOptions { lane_tests: vec![tests.clone()], ..RunOptions::default() };
    assert!(scalar.run(16, &tests, &extra).is_err(), "lane tables on a scalar build");
    lane_sim.clean();
    scalar.clean();
}
