//! Quickstart: build the paper's Figure 1 model, generate + compile the
//! instrumented simulator, and run it until the overflow is diagnosed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use accmos::{AccMoS, RunOptions};
use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar, TestVectors};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Figure 1 model: two accumulators feeding a sum whose int32
    // output wraps after a long run.
    let mut b = ModelBuilder::new("Sample");
    b.inport("A", DataType::I32);
    b.inport("B", DataType::I32);
    b.actor("AccA", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
    b.actor("AccB", ActorKind::DiscreteIntegrator { gain: 1.0, init: Scalar::I32(0) });
    b.actor("Sum", ActorKind::Sum { signs: "++".into() });
    b.outport("Out", DataType::I32);
    b.connect(("A", 0), ("AccA", 0));
    b.connect(("B", 0), ("AccB", 0));
    b.connect(("AccA", 0), ("Sum", 0));
    b.connect(("AccB", 0), ("Sum", 1));
    b.connect(("Sum", 0), ("Out", 0));
    let model = b.build()?;

    // Preprocess -> instrument -> synthesize -> compile (gcc -O3 -fwrapv).
    let sim = AccMoS::new().prepare(&model)?;
    println!(
        "generated + compiled in {:.2?} + {:.2?}",
        sim.codegen_time(),
        sim.compile_time()
    );

    // Constant charging currents; the sum wraps around step 2^31 / 2000.
    let mut tests = TestVectors::new();
    tests.push_column("A", DataType::I32, vec![Scalar::I32(1000)]);
    tests.push_column("B", DataType::I32, vec![Scalar::I32(1000)]);

    let report = sim.run(
        3_000_000,
        &tests,
        &RunOptions { stop_on_diagnostic: true, ..RunOptions::default() },
    )?;
    println!("{report}");
    sim.clean();
    Ok(())
}
