//! Inspect the generated simulation code: parse a model from its MDLX
//! text, run the code generator, and print the instrumented C — the
//! diagnostic functions of Figure 4 and the main/model functions of
//! Figure 5 are all visible.
//!
//! ```sh
//! cargo run --example codegen_inspect
//! ```

use accmos::{AccMoS, CodegenOptions};

const MODEL: &str = r#"
<Model name="Demo">
  <System kind="plain">
    <Block name="In1"   type="Inport"  index="0" dtype="int32"/>
    <Block name="In2"   type="Inport"  index="1" dtype="int32"/>
    <Block name="Minus" type="Sum"     signs="+-" dtype="int32" monitor="true"/>
    <Block name="Out"   type="Outport" index="0" dtype="int32"/>
    <Line src="In1:0"   dst="Minus:0"/>
    <Line src="In2:0"   dst="Minus:1"/>
    <Line src="Minus:0" dst="Out:0"/>
  </System>
</Model>
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = accmos::parse_mdlx(MODEL)?;
    let program = AccMoS::new().with_codegen(CodegenOptions::accmos()).generate(&model)?;
    println!("// ==== {}.c (generated) ====", program.model);
    println!("{}", program.main_c);
    println!("// diagnostic sites: {:?}", program.diag_sites);
    Ok(())
}
