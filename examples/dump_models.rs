//! Regenerate the MDLX sample files in `assets/` from the benchmark suite.
//!
//! ```sh
//! cargo run --example dump_models
//! ```
fn main() -> std::io::Result<()> {
    std::fs::create_dir_all("assets")?;
    std::fs::write("assets/figure1.mdlx", accmos::write_mdlx(&accmos_models::figure1()))?;
    std::fs::write("assets/csev.mdlx", accmos::write_mdlx(&accmos_models::by_name("CSEV")))?;
    std::fs::write("assets/twc.mdlx", accmos::write_mdlx(&accmos_models::by_name("TWC")))?;
    println!("wrote assets/figure1.mdlx, assets/csev.mdlx, assets/twc.mdlx");
    Ok(())
}
