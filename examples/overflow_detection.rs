//! The paper's §4 error-diagnosis case study: two faults injected into the
//! CSEV electric-vehicle charging model, detected by the compiled AccMoS
//! simulator orders of magnitude faster than the interpretive engine.
//!
//! ```sh
//! cargo run --release --example overflow_detection
//! ```

use accmos::{AccMoS, Engine as _, NormalEngine, RunOptions, SimOptions};
use accmos_models::{csev_variant, CsevFault};
use accmos_testgen::random_tests;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, fault, horizon) in [
        ("wrap on overflow in the `quantity` data store", CsevFault::Quantity, 3_000_000u64),
        ("downcast in the charging-power product", CsevFault::Power, 100_000),
    ] {
        println!("== fault: {label} ==");
        let model = csev_variant(fault);
        let pre = accmos::preprocess(&model)?;
        let tests = random_tests(&pre, 64, 42);

        let sim = AccMoS::new().prepare(&model)?;
        let compiled = sim.run(
            horizon,
            &tests,
            &RunOptions { stop_on_diagnostic: true, ..RunOptions::default() },
        )?;
        sim.clean();

        let interpreted = NormalEngine::new().run(
            &pre,
            &tests,
            &SimOptions::steps(horizon).stopping_on_diagnostic(),
        );

        for d in &compiled.diagnostics {
            println!("  {d}");
        }
        println!(
            "  AccMoS {:.3}s vs SSE {:.3}s  ({:.1}x faster to the first diagnosis)",
            compiled.wall.as_secs_f64(),
            interpreted.wall.as_secs_f64(),
            interpreted.wall.as_secs_f64() / compiled.wall.as_secs_f64().max(1e-9),
        );
    }
    Ok(())
}
