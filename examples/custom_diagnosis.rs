//! Custom signal diagnosis (paper §3.2B): user-defined predicates over an
//! actor's output, instrumented into the generated code alongside the
//! built-in diagnoses.
//!
//! ```sh
//! cargo run --release --example custom_diagnosis
//! ```

use accmos::{AccMoS, CodegenOptions, CustomProbe, RunOptions};
use accmos_ir::{ActorKind, DataType, ModelBuilder, Scalar, TestVectors};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A sensor pipeline whose output the user wants watched for spikes.
    let mut b = ModelBuilder::new("Plant");
    b.inport("Sensor", DataType::I32);
    b.actor("Filter", ActorKind::UnitDelay { init: Scalar::I32(0) });
    b.actor("Trend", ActorKind::DiscreteDerivative);
    b.outport("Out", DataType::I32);
    b.wire("Sensor", "Filter");
    b.wire("Filter", "Trend");
    b.wire("Trend", "Out");
    let model = b.build()?;

    // "Detecting sudden signal changes, monitoring the output value of a
    // specified actor" — exactly the paper's custom-diagnosis use case.
    let mut codegen = CodegenOptions::accmos();
    codegen.custom.push(CustomProbe {
        name: "spike".into(),
        actor: "Plant_Trend".into(),
        condition_c: "value > 500 || value < -500".into(),
    });
    codegen.custom.push(CustomProbe {
        name: "stuck_high".into(),
        actor: "Plant_Filter".into(),
        condition_c: "value > 900".into(),
    });

    let sim = AccMoS::new().with_codegen(codegen).prepare(&model)?;
    let mut tests = TestVectors::new();
    tests.push_column(
        "Sensor",
        DataType::I32,
        vec![
            Scalar::I32(10),
            Scalar::I32(12),
            Scalar::I32(950), // spike + stuck-high
            Scalar::I32(11),
            Scalar::I32(9),
        ],
    );
    let report = sim.run(50, &tests, &RunOptions::default())?;
    sim.clean();

    println!("{report}");
    for probe in &report.custom {
        println!(
            "custom probe `{}` on {}: first at step {}, {} hits",
            probe.name, probe.actor, probe.first_step, probe.count
        );
    }
    assert!(!report.custom.is_empty(), "the spike should have been caught");
    Ok(())
}
