//! Equal-time coverage comparison (the paper's Table 3 experiment) on the
//! train-wheel-controller benchmark: how much actor/condition/decision/
//! MC/DC coverage each engine reaches within the same wall-clock budget.
//!
//! ```sh
//! cargo run --release --example coverage_analysis
//! ```

use accmos_bench::{coverage_row, coverage_within_budget};
use accmos_ir::CoverageKind;
use std::time::Duration;

fn main() {
    let model = accmos_models::by_name("TWC");
    println!("model TWC: {} actors, {} subsystems", model.root.actor_count(), model.root.subsystem_count());
    println!("{:<8} {:<8} {:>10} {:>10} {:>10} {:>10}", "budget", "engine", "actor", "condition", "decision", "MC/DC");
    for ms in [100u64, 400, 1600] {
        let (accmos, sse) = coverage_within_budget(&model, Duration::from_millis(ms), 7);
        for (label, report) in [("accmos", &accmos), ("sse", &sse)] {
            let row = coverage_row(report);
            println!(
                "{:<8} {:<8} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%   ({} steps)",
                format!("{ms}ms"),
                label,
                row[0],
                row[1],
                row[2],
                row[3],
                report.steps
            );
        }
    }
    let _ = CoverageKind::ALL;
}
